//! Fault forensics: the flip→detection trajectory of an injected fault.
//!
//! A campaign outcome label (Table 1) says *how a fault ended*; forensics
//! measures the window of vulnerability in between — the HAFT claim that
//! ILR detects *before* corruption escapes and HTM rolls it back is a
//! claim about this window. When a [`crate::FaultPlan`] fires, the VM
//! starts a positional taint track: the flipped register seeds a shadow
//! set keyed by `(thread, call depth, register slot)` plus per-byte
//! memory keys, and every subsequent instruction applies a conservative
//! transfer function *before* it executes. Tracking ends when
//!
//! - the taint set drains (every corrupted value was overwritten:
//!   [`FaultDetector::Masked`], or never read at all:
//!   [`FaultDetector::MaskedAtSite`]),
//! - a detector fires (ILR check, majority vote, HTM rollback, OS trap),
//!   or
//! - corruption externalizes ([`FaultDetector::Escaped`]).
//!
//! Zero cost when off: the state is an `Option<Box<..>>` allocated only
//! when `cfg.forensics` is set *and* a fault plan is present, so clean
//! runs pay exactly one `None` branch per instruction and fault-free
//! results are bit-identical with the flag unused. Both engines drive
//! the same transfer rules over engine-invariant keys (a fused `Slot`
//! index equals the interpreter's `ValueId`), so forensics, like every
//! other observable, is pinned identical across `Interp` and `Fused`.
//!
//! Attribution limits (also in ARCHITECTURE.md): control-flow divergence
//! caused by a tainted branch condition is recorded as a sticky flag —
//! data written on the wrong path is *not* tainted, so a drained taint
//! set under tainted control is never reported as masked; the flag is
//! conservative across rollbacks. Memory taint at commit time
//! over-approximates `escaped_to_memory` (buffered bytes may still be
//! overwritten later). Cross-thread propagation is tracked through
//! memory only.

use std::collections::HashSet;

use haft_ir::function::{BlockId, Function, ValueId};
use haft_ir::inst::{Callee, Op, Operand};
use haft_ir::module::FuncId;
use haft_trace::TraceEvent;

use super::decode::{DOp, Decoded, Src};
use super::profile::OpClass;
use super::{Frame, RunOutcome, Vm, FUNC_BASE, MAX_CALL_DEPTH};
use crate::mem::Memory;

/// Which mechanism closed (or failed to close) the window of
/// vulnerability. Ordered roughly best to worst.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultDetector {
    /// The flipped register has no static reader: masked at the site
    /// itself, latency zero by definition.
    MaskedAtSite,
    /// Every tainted value was overwritten before any use escaped.
    Masked,
    /// An ILR check (or an unrecoverable 3-way vote divergence) fired.
    Ilr,
    /// A majority vote found the divergent copy and masked it in place.
    Vote,
    /// A checksum verify-and-correct reconstructed the divergent lane
    /// in place (the ABFT backend's epilogue).
    Checksum,
    /// A transactional rollback erased all remaining corruption.
    HtmAbort,
    /// The OS terminated the program (wild access, div-by-zero, ...).
    Trap,
    /// The instruction budget ran out while corruption was still live.
    Hang,
    /// Corruption reached program output (or was still live at exit).
    Escaped,
}

impl FaultDetector {
    /// Every detector, in declaration order (histogram iteration).
    pub const ALL: [FaultDetector; 9] = [
        FaultDetector::MaskedAtSite,
        FaultDetector::Masked,
        FaultDetector::Ilr,
        FaultDetector::Vote,
        FaultDetector::Checksum,
        FaultDetector::HtmAbort,
        FaultDetector::Trap,
        FaultDetector::Hang,
        FaultDetector::Escaped,
    ];

    /// Stable name used in metrics (`faults.detect_latency.<label>.*`)
    /// and report tables.
    pub fn label(self) -> &'static str {
        match self {
            FaultDetector::MaskedAtSite => "masked-at-site",
            FaultDetector::Masked => "masked",
            FaultDetector::Ilr => "ilr",
            FaultDetector::Vote => "vote",
            FaultDetector::Checksum => "abft-correct",
            FaultDetector::HtmAbort => "htm-abort",
            FaultDetector::Trap => "trap",
            FaultDetector::Hang => "hang",
            FaultDetector::Escaped => "escaped",
        }
    }
}

/// Where an injected flip landed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSite {
    /// Name of the function whose register was flipped.
    pub func: String,
    /// Coarse op class of the faulted instruction (profile names).
    pub op_class: &'static str,
    /// The dynamic register-write occurrence that was flipped.
    pub occurrence: u64,
    /// The XOR mask *actually* applied — after type truncation and the
    /// forced-single-bit fallback, not the raw `FaultPlan::xor_mask`.
    pub applied_mask: u64,
}

/// Per-injection trajectory measurements, carried on
/// [`super::RunResult::forensics`] when the run had `cfg.forensics` set
/// and the fault actually fired.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Forensics {
    pub site: FaultSite,
    /// What ended the tracking window.
    pub detector: FaultDetector,
    /// Dynamic instructions from the flip to detection/masking. Zero if
    /// and only if the flip was masked at the site itself.
    pub detect_latency_insts: u64,
    /// Scoreboard cycles over the same window.
    pub detect_latency_cycles: u64,
    /// Peak simultaneous size of the taint set (registers + memory
    /// bytes): how wide the corruption spread before the window closed.
    pub propagation_width: u64,
    /// A tainted value reached committed memory (store outside a
    /// transaction, or a commit while memory bytes were tainted).
    pub escaped_to_memory: bool,
}

/// Shadow-set key. Register keys are positional — `(thread, call depth,
/// slot)` — which is engine-invariant: the fused engine's flat slot index
/// is the interpreter's `ValueId` by construction (see `decode::lower`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum TaintKey {
    Reg { tid: u32, depth: u32, slot: u32 },
    Mem { addr: u64 },
}

/// Tracking phases. `Pending` exists because the flip happens *inside*
/// an instruction (at its register write) but the site's op class and
/// the dead-use scan need the instruction as a whole — the seed
/// completes in the post-execute hook of the same step.
#[derive(Clone, Copy, Debug)]
enum Phase {
    /// Fault armed, not fired yet.
    Idle,
    /// Flip applied this instruction; site attribution incomplete.
    Pending { func: FuncId, depth: u32, slot: u32, mask: u64, occurrence: u64 },
    /// Shadow set live.
    Tracking,
    /// Window closed; measurements frozen.
    Done,
}

/// The in-flight forensics state of one fault run.
pub(super) struct ForensicsState {
    phase: Phase,
    site_func: FuncId,
    site_class: OpClass,
    occurrence: u64,
    applied_mask: u64,
    /// `Vm::instructions` / absolute virtual time at the flip.
    seed_insts: u64,
    seed_cycles: u64,
    taint: HashSet<TaintKey>,
    /// Per-thread transactional undo log: `(key, was_present)` for every
    /// shadow-set mutation made while that thread was transactional. An
    /// abort replays its log in reverse so the shadow set rolls back
    /// exactly with the architectural state it mirrors.
    undo: Vec<Vec<(TaintKey, bool)>>,
    peak: u64,
    /// A tainted value decided a branch (or an indirect call target):
    /// control flow may have diverged, so a drained taint set no longer
    /// proves masking. Sticky, conservatively even across rollbacks.
    control_tainted: bool,
    escaped_to_memory: bool,
    detector: FaultDetector,
    latency_insts: u64,
    latency_cycles: u64,
}

impl ForensicsState {
    pub(super) fn new(n_threads: usize) -> Self {
        ForensicsState {
            phase: Phase::Idle,
            site_func: FuncId(0),
            site_class: OpClass::Other,
            occurrence: 0,
            applied_mask: 0,
            seed_insts: 0,
            seed_cycles: 0,
            taint: HashSet::new(),
            undo: vec![Vec::new(); n_threads],
            peak: 0,
            control_tainted: false,
            escaped_to_memory: false,
            detector: FaultDetector::Masked,
            latency_insts: 0,
            latency_cycles: 0,
        }
    }

    /// Fault hook: the flip was just applied to `slot` of the live frame.
    /// Records the positional seed; op class and counters complete in the
    /// post-execute hook ([`Vm::forensics_seed_complete`]).
    pub(super) fn seed(&mut self, func: FuncId, depth: usize, slot: u32, mask: u64, occ: u64) {
        if matches!(self.phase, Phase::Idle) {
            self.phase = Phase::Pending { func, depth: depth as u32, slot, mask, occurrence: occ };
        }
    }

    fn tracking(&self) -> bool {
        matches!(self.phase, Phase::Tracking)
    }

    /// Freezes the measurements. Any detector other than masked-at-site
    /// fires at an instruction *after* the seed (the flip's own
    /// instruction cannot also detect it — vote results are outside the
    /// fault stream), so its latency is at least one; the clamp makes
    /// `detect_latency_insts == 0 ⇔ MaskedAtSite` hold by construction
    /// even for the budget-exhausted-at-the-seed corner.
    fn done(&mut self, det: FaultDetector, insts_now: u64, cycles_now: u64) {
        self.phase = Phase::Done;
        self.detector = det;
        let insts = insts_now.saturating_sub(self.seed_insts);
        self.latency_insts = if det == FaultDetector::MaskedAtSite { 0 } else { insts.max(1) };
        self.latency_cycles = cycles_now.saturating_sub(self.seed_cycles);
    }

    /// Detection hook: on a single-fault run, *any* correction or
    /// detection event is caused by the injected fault (clean runs never
    /// diverge), so no taint-relevance check is needed.
    pub(super) fn detect(&mut self, det: FaultDetector, insts_now: u64, cycles_now: u64) {
        if self.tracking() {
            self.done(det, insts_now, cycles_now);
        }
    }

    /// Masked-by-drain check: the set is empty *and* no undo log could
    /// resurrect a key on a future abort.
    fn try_drain(&mut self, insts_now: u64, cycles_now: u64) {
        if self.tracking()
            && self.taint.is_empty()
            && !self.control_tainted
            && self.undo.iter().all(|u| u.is_empty())
        {
            self.done(FaultDetector::Masked, insts_now, cycles_now);
        }
    }

    fn taint_insert(&mut self, tid: usize, in_tx: bool, key: TaintKey) {
        if self.taint.insert(key) {
            if in_tx {
                self.undo[tid].push((key, false));
            }
            self.peak = self.peak.max(self.taint.len() as u64);
        }
    }

    fn taint_remove(&mut self, tid: usize, in_tx: bool, key: TaintKey) {
        if self.taint.remove(&key) && in_tx {
            self.undo[tid].push((key, true));
        }
    }

    fn reg_tainted(&self, tid: usize, depth: u32, slot: u32) -> bool {
        self.taint.contains(&TaintKey::Reg { tid: tid as u32, depth, slot })
    }

    fn set_reg(&mut self, tid: usize, in_tx: bool, depth: u32, slot: u32, tainted: bool) {
        let key = TaintKey::Reg { tid: tid as u32, depth, slot };
        if tainted {
            self.taint_insert(tid, in_tx, key);
        } else {
            self.taint_remove(tid, in_tx, key);
        }
    }

    fn mem_tainted(&self, addr: u64, len: u32) -> bool {
        (0..len as u64).any(|i| self.taint.contains(&TaintKey::Mem { addr: addr.wrapping_add(i) }))
    }

    fn set_mem(&mut self, tid: usize, in_tx: bool, addr: u64, len: u32, tainted: bool) {
        for i in 0..len as u64 {
            let key = TaintKey::Mem { addr: addr.wrapping_add(i) };
            if tainted {
                self.taint_insert(tid, in_tx, key);
            } else {
                self.taint_remove(tid, in_tx, key);
            }
        }
        if tainted && !in_tx {
            self.escaped_to_memory = true;
        }
    }

    /// `Ret` transfer: the popping frame's registers cease to exist.
    fn purge_depth(&mut self, tid: usize, in_tx: bool, depth: u32) {
        let dead: Vec<TaintKey> = self
            .taint
            .iter()
            .copied()
            .filter(|k| {
                matches!(k, TaintKey::Reg { tid: t, depth: d, .. }
                if *t == tid as u32 && *d == depth)
            })
            .collect();
        for key in dead {
            self.taint_remove(tid, in_tx, key);
        }
    }

    /// Phase boundary: the thread gets a fresh frame stack (and is never
    /// transactional here), so its register taint and undo log are moot.
    /// Memory taint persists across phases.
    pub(super) fn purge_thread(&mut self, tid: usize) {
        self.taint.retain(|k| !matches!(k, TaintKey::Reg { tid: t, .. } if *t == tid as u32));
        self.undo[tid].clear();
    }

    /// Commit hook: the thread's speculative state became architectural.
    pub(super) fn on_commit(&mut self, tid: usize) {
        if !self.tracking() {
            return;
        }
        self.undo[tid].clear();
        if self.taint.iter().any(|k| matches!(k, TaintKey::Mem { .. })) {
            self.escaped_to_memory = true;
        }
    }

    /// Abort hook, after the architectural rollback: replays the
    /// thread's undo log in reverse, then — if the rollback erased the
    /// last live corruption — credits the HTM with the recovery.
    pub(super) fn on_abort(&mut self, tid: usize, insts_now: u64, cycles_now: u64) {
        if !self.tracking() {
            return;
        }
        let log: Vec<(TaintKey, bool)> = self.undo[tid].drain(..).collect();
        for (key, was_present) in log.into_iter().rev() {
            if was_present {
                self.taint.insert(key);
            } else {
                self.taint.remove(&key);
            }
        }
        if self.taint.is_empty() && !self.control_tainted && self.undo.iter().all(|u| u.is_empty())
        {
            self.done(FaultDetector::HtmAbort, insts_now, cycles_now);
        }
    }
}

/// Operand value against a frame (mirror of `Vm::operand`, value only).
fn op_val(frame: &Frame, mem: &Memory, o: &Operand) -> u64 {
    match o {
        Operand::Value(v) => frame.regs[v.0 as usize],
        Operand::Imm(v, ty) => (*v as u64) & ty.mask(),
        Operand::F64Bits(b) => *b,
        Operand::GlobalAddr(g) => mem.global_bases[g.0 as usize],
        Operand::FuncAddr(f) => FUNC_BASE + f.0 as u64,
    }
}

/// Decoded-operand value against a frame (mirror of `engine::rd`).
fn src_val(frame: &Frame, s: Src) -> u64 {
    match s {
        Src::Slot(i) => frame.regs[i as usize],
        Src::Const(v) => v,
    }
}

impl<'m> Vm<'m> {
    /// Pre-execute taint transfer, interpreter side. Runs before the op
    /// executes because control ops (Ret, Br) invalidate operand reads
    /// afterwards; the transfer models the writes the op is about to
    /// perform. The fused twin is [`Vm::forensics_transfer_fused`] —
    /// the two must stay rule-for-rule identical.
    pub(super) fn forensics_transfer_interp(
        &mut self,
        tid: usize,
        fid: FuncId,
        bid: BlockId,
        op: &Op,
        result: Option<ValueId>,
    ) {
        let Some(fx) = self.forensics.as_deref_mut() else { return };
        if !fx.tracking() {
            return;
        }
        let t = &self.threads[tid];
        let frame = t.frames.last().expect("live frame");
        let depth = t.frames.len() as u32;
        let in_tx = t.in_tx();
        let mem = &self.mem;
        let opt = |fx: &ForensicsState, o: &Operand| match o.as_value() {
            Some(v) => fx.reg_tainted(tid, depth, v.0),
            None => false,
        };
        match op {
            // Pure ops: destination tainted iff any register source is
            // (a clean result overwrites — and thus clears — the slot).
            Op::Bin { .. }
            | Op::Un { .. }
            | Op::Cmp { .. }
            | Op::Move { .. }
            | Op::Cast { .. }
            | Op::Select { .. }
            | Op::Gep { .. }
            | Op::ThreadId
            | Op::NumThreads => {
                let mut any = false;
                op.for_each_operand(|o| any |= opt(fx, o));
                fx.set_reg(tid, in_tx, depth, result.expect("pure op has result").0, any);
            }
            Op::Alloc { size } => {
                let any = opt(fx, size);
                fx.set_reg(tid, in_tx, depth, result.expect("alloc has result").0, any);
            }
            Op::Load { ty, addr, .. } => {
                let av = op_val(frame, mem, addr);
                let any = opt(fx, addr) || fx.mem_tainted(av, ty.size_bytes());
                fx.set_reg(tid, in_tx, depth, result.expect("load has result").0, any);
            }
            Op::Store { ty, val, addr, .. } => {
                // A tainted address corrupts wherever the store lands; a
                // tainted value corrupts the addressed bytes.
                let any = opt(fx, val) || opt(fx, addr);
                let av = op_val(frame, mem, addr);
                fx.set_mem(tid, in_tx, av, ty.size_bytes(), any);
            }
            Op::Rmw { ty, addr, val, .. } => {
                let av = op_val(frame, mem, addr);
                let any = opt(fx, addr) || opt(fx, val) || fx.mem_tainted(av, ty.size_bytes());
                fx.set_reg(tid, in_tx, depth, result.expect("rmw has result").0, any);
                fx.set_mem(tid, in_tx, av, ty.size_bytes(), any);
            }
            Op::CmpXchg { ty, addr, expected, new } => {
                let av = op_val(frame, mem, addr);
                let any = opt(fx, addr)
                    || opt(fx, expected)
                    || opt(fx, new)
                    || fx.mem_tainted(av, ty.size_bytes());
                fx.set_reg(tid, in_tx, depth, result.expect("cmpxchg has result").0, any);
                fx.set_mem(tid, in_tx, av, ty.size_bytes(), any);
            }
            Op::Br { dest } => {
                phi_taint_interp(fx, tid, in_tx, depth, self.m.func(fid), bid, *dest);
            }
            Op::CondBr { cond, t: tb, f: fb } => {
                if opt(fx, cond) {
                    fx.control_tainted = true;
                }
                let taken = op_val(frame, mem, cond) & 1 != 0;
                let dest = if taken { *tb } else { *fb };
                phi_taint_interp(fx, tid, in_tx, depth, self.m.func(fid), bid, dest);
            }
            Op::Call { callee, args, .. } => {
                let target = match callee {
                    Callee::Direct(f) => Some(*f),
                    Callee::Indirect(o) => {
                        if opt(fx, o) {
                            fx.control_tainted = true;
                        }
                        let v = op_val(frame, mem, o);
                        let idx = v.wrapping_sub(FUNC_BASE);
                        if v >= FUNC_BASE && (idx as usize) < self.m.funcs.len() {
                            Some(FuncId(idx as u32))
                        } else {
                            None
                        }
                    }
                };
                // Mirror the trap guards: a call that traps creates no
                // frame, so no taint may flow to depth + 1.
                let Some(target) = target else { return };
                if t.frames.len() >= MAX_CALL_DEPTH
                    || self.m.func(target).params.len() != args.len()
                {
                    return;
                }
                for (i, a) in args.iter().enumerate() {
                    let at = opt(fx, a);
                    fx.set_reg(tid, in_tx, depth + 1, i as u32, at);
                }
            }
            Op::Ret { val } => {
                let rt = val.as_ref().map(|o| opt(fx, o)).unwrap_or(false);
                fx.purge_depth(tid, in_tx, depth);
                if t.frames.len() > 1 {
                    if let (Some(dst), Some(_)) = (frame.return_to, val) {
                        fx.set_reg(tid, in_tx, depth - 1, dst.0, rt);
                    }
                }
            }
            Op::Vote { a, b, c, .. } | Op::ChkCorrect { a, b, c, .. } => {
                // Two-of-three majority masks a single tainted copy: the
                // result is corrupt only if at least two inputs are.
                let n = [a, b, c].into_iter().filter(|o| opt(fx, o)).count();
                fx.set_reg(tid, in_tx, depth, result.expect("vote has result").0, n >= 2);
            }
            Op::Emit { val, .. } => {
                // Externalizing a tainted value outside a transaction is
                // the definitive escape. Inside one, the emit aborts
                // first and re-runs non-transactionally.
                if !in_tx && opt(fx, val) {
                    let now = self.wall_cycles + t.sb.clock;
                    fx.detect(FaultDetector::Escaped, self.instructions, now);
                }
            }
            Op::Phi { .. }
            | Op::TxBegin
            | Op::TxEnd
            | Op::TxCondSplit
            | Op::TxCounterInc { .. }
            | Op::TxAbort { .. }
            | Op::Lock { .. }
            | Op::Unlock { .. }
            | Op::Nop => {}
        }
        fx.try_drain(self.instructions, self.wall_cycles + t.sb.clock);
    }

    /// Pre-execute taint transfer, fused side — rule-for-rule the twin
    /// of [`Vm::forensics_transfer_interp`] over decoded operands.
    pub(super) fn forensics_transfer_fused(&mut self, tid: usize, op: &DOp, d: &Decoded) {
        let Some(fx) = self.forensics.as_deref_mut() else { return };
        if !fx.tracking() {
            return;
        }
        let t = &self.threads[tid];
        let frame = t.frames.last().expect("live frame");
        let depth = t.frames.len() as u32;
        let in_tx = t.in_tx();
        let st = |fx: &ForensicsState, s: Src| match s {
            Src::Slot(i) => fx.reg_tainted(tid, depth, i),
            Src::Const(_) => false,
        };
        match *op {
            DOp::Bin { a, b, dst, .. } | DOp::Cmp { a, b, dst, .. } => {
                let any = st(fx, a) || st(fx, b);
                fx.set_reg(tid, in_tx, depth, dst, any);
            }
            DOp::Un { a, dst, .. } | DOp::MoveV { a, dst, .. } | DOp::Cast { a, dst, .. } => {
                let any = st(fx, a);
                fx.set_reg(tid, in_tx, depth, dst, any);
            }
            DOp::Select { c, t: tv, f: fv, dst, .. } => {
                let any = st(fx, c) || st(fx, tv) || st(fx, fv);
                fx.set_reg(tid, in_tx, depth, dst, any);
            }
            DOp::Gep { base, index, dst, .. } => {
                let any = st(fx, base) || st(fx, index);
                fx.set_reg(tid, in_tx, depth, dst, any);
            }
            DOp::ThreadIdD { dst } | DOp::NumThreadsD { dst } => {
                fx.set_reg(tid, in_tx, depth, dst, false);
            }
            DOp::Alloc { size, dst } => {
                let any = st(fx, size);
                fx.set_reg(tid, in_tx, depth, dst, any);
            }
            DOp::Load { ty, addr, dst, .. } => {
                let av = src_val(frame, addr);
                let any = st(fx, addr) || fx.mem_tainted(av, ty.size_bytes());
                fx.set_reg(tid, in_tx, depth, dst, any);
            }
            DOp::Store { ty, val, addr, .. } => {
                let any = st(fx, val) || st(fx, addr);
                let av = src_val(frame, addr);
                fx.set_mem(tid, in_tx, av, ty.size_bytes(), any);
            }
            DOp::Rmw { ty, addr, val, dst, .. } => {
                let av = src_val(frame, addr);
                let any = st(fx, addr) || st(fx, val) || fx.mem_tainted(av, ty.size_bytes());
                fx.set_reg(tid, in_tx, depth, dst, any);
                fx.set_mem(tid, in_tx, av, ty.size_bytes(), any);
            }
            DOp::CmpXchg { ty, addr, expected, new, dst } => {
                let av = src_val(frame, addr);
                let any = st(fx, addr)
                    || st(fx, expected)
                    || st(fx, new)
                    || fx.mem_tainted(av, ty.size_bytes());
                fx.set_reg(tid, in_tx, depth, dst, any);
                fx.set_mem(tid, in_tx, av, ty.size_bytes(), any);
            }
            DOp::Br { edge } => {
                phi_taint_fused(fx, tid, in_tx, depth, d, edge);
            }
            DOp::CondBr { cond, t: te, f: fe, .. } => {
                if st(fx, cond) {
                    fx.control_tainted = true;
                }
                let taken = src_val(frame, cond) & 1 != 0;
                phi_taint_fused(fx, tid, in_tx, depth, d, if taken { te } else { fe });
            }
            DOp::CallDirect { target, args_at, args_n, arity_ok, .. } => {
                if t.frames.len() >= MAX_CALL_DEPTH || !arity_ok {
                    return;
                }
                let _ = target;
                for (i, s) in
                    d.args[args_at as usize..(args_at + args_n) as usize].iter().enumerate()
                {
                    let at = st(fx, *s);
                    fx.set_reg(tid, in_tx, depth + 1, i as u32, at);
                }
            }
            DOp::CallInd { callee, args_at, args_n, .. } => {
                if st(fx, callee) {
                    fx.control_tainted = true;
                }
                let v = src_val(frame, callee);
                let idx = v.wrapping_sub(FUNC_BASE);
                if v < FUNC_BASE
                    || (idx as usize) >= d.funcs.len()
                    || t.frames.len() >= MAX_CALL_DEPTH
                    || d.funcs[idx as usize].n_params != args_n as usize
                {
                    return;
                }
                for (i, s) in
                    d.args[args_at as usize..(args_at + args_n) as usize].iter().enumerate()
                {
                    let at = st(fx, *s);
                    fx.set_reg(tid, in_tx, depth + 1, i as u32, at);
                }
            }
            DOp::Ret { val } => {
                let rt = val.map(|s| st(fx, s)).unwrap_or(false);
                fx.purge_depth(tid, in_tx, depth);
                if t.frames.len() > 1 {
                    if let (Some(dst), Some(_)) = (frame.return_to, val) {
                        fx.set_reg(tid, in_tx, depth - 1, dst.0, rt);
                    }
                }
            }
            DOp::Vote { a, b, c, dst, .. } | DOp::ChkCorrect { a, b, c, dst, .. } => {
                let n = [a, b, c].into_iter().filter(|s| st(fx, *s)).count();
                fx.set_reg(tid, in_tx, depth, dst, n >= 2);
            }
            DOp::Emit { val } => {
                if !in_tx && st(fx, val) {
                    let now = self.wall_cycles + t.sb.clock;
                    fx.detect(FaultDetector::Escaped, self.instructions, now);
                }
            }
            DOp::TxBegin
            | DOp::TxEnd
            | DOp::TxCondSplit
            | DOp::TxCounterInc { .. }
            | DOp::TxAbortIlr
            | DOp::TxAbortExplicit
            | DOp::Lock { .. }
            | DOp::Unlock { .. }
            | DOp::Nop
            | DOp::TrapMalformed => {}
        }
        fx.try_drain(self.instructions, self.wall_cycles + t.sb.clock);
    }

    /// Post-execute hook: completes a pending seed with the faulted
    /// instruction's op class, stamps the latency baselines, and runs the
    /// static dead-use scan (a flip into a register no instruction ever
    /// reads is masked at the site, latency zero). The scan walks the IR
    /// (`self.m`), which both engines share, so the verdict is
    /// engine-invariant.
    pub(super) fn forensics_seed_complete(&mut self, tid: usize, class: OpClass) {
        let Some(fx) = self.forensics.as_deref_mut() else { return };
        let Phase::Pending { func, depth, slot, mask, occurrence } = fx.phase else { return };
        let now = self.wall_cycles + self.threads[tid].sb.clock;
        fx.site_func = func;
        fx.site_class = class;
        fx.occurrence = occurrence;
        fx.applied_mask = mask;
        fx.seed_insts = self.instructions;
        fx.seed_cycles = now;
        if value_has_uses(self.m.func(func), ValueId(slot)) {
            fx.phase = Phase::Tracking;
            let in_tx = self.threads[tid].in_tx();
            fx.taint_insert(tid, in_tx, TaintKey::Reg { tid: tid as u32, depth, slot });
        } else {
            fx.done(FaultDetector::MaskedAtSite, self.instructions, now);
        }
        if let Some(tr) = self.trace.as_mut() {
            tr.push(
                TraceEvent::instant("vm", "fault.flip", now)
                    .lane(0, tid as u32)
                    .arg("mask", format!("{mask:#x}")),
            );
        }
    }

    /// Run teardown: resolves whatever phase tracking ended in into the
    /// public [`Forensics`] record. `None` if the fault never fired (the
    /// planned occurrence lay beyond the run's register-write stream).
    pub(super) fn conclude_forensics(&mut self, outcome: RunOutcome) -> Option<Forensics> {
        let mut fx = self.forensics.take()?;
        if matches!(fx.phase, Phase::Idle) {
            return None;
        }
        if let Phase::Pending { func, mask, occurrence, .. } = fx.phase {
            // Defensive: a seed whose instruction never reached the
            // post-execute hook (no such path today).
            fx.site_func = func;
            fx.site_class = OpClass::Other;
            fx.occurrence = occurrence;
            fx.applied_mask = mask;
            fx.seed_insts = self.instructions;
            fx.seed_cycles = self.wall_cycles;
            fx.phase = Phase::Tracking;
        }
        if fx.tracking() {
            let det = match outcome {
                RunOutcome::Hang => FaultDetector::Hang,
                RunOutcome::Trapped(_) => FaultDetector::Trap,
                // A fail-stop the ILR hook did not see: the explicit
                // abort path outside a transaction.
                RunOutcome::Detected => FaultDetector::Ilr,
                RunOutcome::Completed => {
                    if fx.taint.is_empty() && !fx.control_tainted {
                        FaultDetector::Masked
                    } else {
                        FaultDetector::Escaped
                    }
                }
            };
            fx.done(det, self.instructions, self.wall_cycles);
        }
        if let Some(tr) = self.trace.as_mut() {
            tr.push(
                TraceEvent::span("vm", "fault.window", fx.seed_cycles, fx.latency_cycles)
                    .arg("detector", fx.detector.label().to_string()),
            );
        }
        Some(Forensics {
            site: FaultSite {
                func: self.m.func(fx.site_func).name.clone(),
                op_class: fx.site_class.name(),
                occurrence: fx.occurrence,
                applied_mask: fx.applied_mask,
            },
            detector: fx.detector,
            detect_latency_insts: fx.latency_insts,
            detect_latency_cycles: fx.latency_cycles,
            propagation_width: fx.peak,
            escaped_to_memory: fx.escaped_to_memory,
        })
    }
}

/// Parallel phi-move taint transfer for an interpreter CFG edge —
/// mirrors `Vm::take_edge`: read every source's taint, then write.
fn phi_taint_interp(
    fx: &mut ForensicsState,
    tid: usize,
    in_tx: bool,
    depth: u32,
    f: &Function,
    from: BlockId,
    to: BlockId,
) {
    let block = &f.blocks[to.0 as usize];
    let mut updates: Vec<(u32, bool)> = Vec::new();
    for &iid in &block.insts {
        let inst = f.inst(iid);
        if let Op::Phi { incomings, .. } = &inst.op {
            if let Some((val, _)) = incomings.iter().find(|(_, b)| *b == from) {
                let tainted =
                    val.as_value().map(|v| fx.reg_tainted(tid, depth, v.0)).unwrap_or(false);
                let dst = f.inst_result(iid).expect("phi has result");
                updates.push((dst.0, tainted));
            }
        } else {
            break;
        }
    }
    for (slot, tainted) in updates {
        fx.set_reg(tid, in_tx, depth, slot, tainted);
    }
}

/// Parallel phi-move taint transfer for a decoded edge — mirrors
/// `Vm::take_edge_fused` over the edge's move list.
fn phi_taint_fused(
    fx: &mut ForensicsState,
    tid: usize,
    in_tx: bool,
    depth: u32,
    d: &Decoded,
    edge: super::decode::Edge,
) {
    let at = edge.moves_at as usize;
    let moves = &d.moves[at..at + edge.moves_n as usize];
    let updates: Vec<(u32, bool)> = moves
        .iter()
        .map(|mv| {
            let tainted = match mv.src {
                Src::Slot(i) => fx.reg_tainted(tid, depth, i),
                Src::Const(_) => false,
            };
            (mv.dst, tainted)
        })
        .collect();
    for (slot, tainted) in updates {
        fx.set_reg(tid, in_tx, depth, slot, tainted);
    }
}

/// True if any instruction in `f` reads `v` (phi incomings included).
fn value_has_uses(f: &Function, v: ValueId) -> bool {
    for block in &f.blocks {
        for &iid in &block.insts {
            let mut hit = false;
            f.inst(iid).op.for_each_operand(|o| {
                if o.as_value() == Some(v) {
                    hit = true;
                }
            });
            if hit {
                return true;
            }
        }
    }
    false
}
