//! Super-instruction fusion over decoded code.
//!
//! Fusion is expressed as a per-pc flag rather than as merged opcodes:
//! `fuse[pc] = true` lets the dispatch loop execute `code[pc + 1]` in the
//! same dispatch when `code[pc]` completed cleanly. Every constituent
//! stays a standalone [`DOp`] at its own pc, so a mid-chain bail (window
//! horizon, instruction budget, trap, abort, blocked lock) simply leaves
//! the pc at the next constituent and resumes later — no un-fusing, no
//! special rollback. Adjacent flags compose into chains, which is where
//! the win comes from: a hardened block's master/shadow straight-line
//! run executes as one long dispatch.
//!
//! What fuses (the hot harden idioms):
//!
//! * **ILR shadow pairs** (`alu_pairs`): compute→compute, and
//!   load→compute for the load-then-shadow-move idiom — ILR emits the
//!   shadow op right next to its master, so hardened code is dominated
//!   by these.
//! * **Check branches** (`cmp_br`): a compare feeding the immediately
//!   following conditional branch on its result — every ILR detection
//!   check ends this way.
//! * **TX brackets** (`tx_brackets`): `tx_counter_inc` followed by
//!   `tx_cond_split`, the TX pass's per-block bookkeeping pair.
//! * **Vote-then-memory** (`vote_mem`): a TMR majority vote whose result
//!   is the address of the next load/store (votes guard exactly the
//!   sync points, so this adjacency is the common case).
//!
//! What must not fuse: anything that transfers control (`CondBr` and
//! friends are chain *enders*, never continuers — the flag at their pc
//! stays false because a chain may only run within one block), anything
//! that can block (`Lock`), and frame-changing ops (`Call`/`Ret`), whose
//! successor pc is not `pc + 1`. Cycle accounting is untouched by
//! construction: each constituent still issues on the scoreboard with
//! its own latency, so a fused chain charges exactly the sum of its
//! constituents' costs.

use super::decode::{DOp, Src};

/// Counts of fused pairs found at decode time, by pattern.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FuseStats {
    /// compute→compute and load→compute (ILR master/shadow idiom).
    pub alu_pairs: usize,
    /// compare→conditional-branch on the compare's result.
    pub cmp_br: usize,
    /// `tx_counter_inc`→`tx_cond_split`.
    pub tx_brackets: usize,
    /// vote→load/store through the voted address.
    pub vote_mem: usize,
}

impl FuseStats {
    /// Total fused pairs.
    pub fn total(&self) -> usize {
        self.alu_pairs + self.cmp_br + self.tx_brackets + self.vote_mem
    }
}

/// Straight-line register compute: always completes at `pc + 1` (modulo
/// traps, which end the chain through the bail path).
fn is_compute(op: &DOp) -> bool {
    matches!(
        op,
        DOp::Bin { .. }
            | DOp::Un { .. }
            | DOp::Cmp { .. }
            | DOp::MoveV { .. }
            | DOp::Cast { .. }
            | DOp::Select { .. }
            | DOp::Gep { .. }
    )
}

/// Computes the fuse flags for one function's code, given its block
/// ranges (`[start, end)` pcs). Pairs never span a block boundary.
pub(crate) fn compute(code: &[DOp], blocks: &[(usize, usize)], stats: &mut FuseStats) -> Vec<bool> {
    let mut fuse = vec![false; code.len()];
    for &(start, end) in blocks {
        for p in start..end.saturating_sub(1) {
            let (a, b) = (&code[p], &code[p + 1]);
            let fused = match (a, b) {
                (DOp::Cmp { dst, .. }, DOp::CondBr { cond: Src::Slot(c), .. }) if c == dst => {
                    stats.cmp_br += 1;
                    true
                }
                (DOp::TxCounterInc { .. }, DOp::TxCondSplit) => {
                    stats.tx_brackets += 1;
                    true
                }
                (
                    DOp::Vote { dst, .. },
                    DOp::Load { addr: Src::Slot(s), .. } | DOp::Store { addr: Src::Slot(s), .. },
                ) if s == dst => {
                    stats.vote_mem += 1;
                    true
                }
                _ if (is_compute(a) || matches!(a, DOp::Load { .. })) && is_compute(b) => {
                    stats.alu_pairs += 1;
                    true
                }
                _ => false,
            };
            fuse[p] = fused;
        }
    }
    fuse
}

#[cfg(test)]
mod tests {
    use super::*;
    use haft_ir::inst::{BinOp, CmpOp};
    use haft_ir::types::Ty;

    use super::super::decode::Edge;

    fn bin(dst: u32) -> DOp {
        DOp::Bin { op: BinOp::Add, ty: Ty::I64, a: Src::Slot(0), b: Src::Slot(1), dst, lat: 1 }
    }

    fn edge() -> Edge {
        Edge { target: 0, moves_at: 0, moves_n: 0 }
    }

    #[test]
    fn compute_pairs_chain_across_a_block() {
        let code = [bin(2), bin(3), bin(4), DOp::Ret { val: None }];
        let mut stats = FuseStats::default();
        let fuse = compute(&code, &[(0, 4)], &mut stats);
        // bin→bin, bin→bin fuse; bin→ret does not; ret is last.
        assert_eq!(fuse, vec![true, true, false, false]);
        assert_eq!(stats.alu_pairs, 2);
    }

    #[test]
    fn cmp_feeding_its_branch_fuses() {
        let code = [
            DOp::Cmp { op: CmpOp::Eq, ty: Ty::I64, a: Src::Slot(0), b: Src::Slot(1), dst: 2 },
            DOp::CondBr { cond: Src::Slot(2), t: edge(), f: edge(), bp: 0 },
        ];
        let mut stats = FuseStats::default();
        let fuse = compute(&code, &[(0, 2)], &mut stats);
        assert_eq!(fuse, vec![true, false]);
        assert_eq!(stats.cmp_br, 1);
        assert_eq!(stats.alu_pairs, 0);

        // A branch on a different value does not fuse with the compare.
        let code = [
            DOp::Cmp { op: CmpOp::Eq, ty: Ty::I64, a: Src::Slot(0), b: Src::Slot(1), dst: 2 },
            DOp::CondBr { cond: Src::Slot(9), t: edge(), f: edge(), bp: 0 },
        ];
        let mut stats = FuseStats::default();
        let fuse = compute(&code, &[(0, 2)], &mut stats);
        assert_eq!(fuse, vec![false, false]);
    }

    #[test]
    fn tx_bracket_and_vote_mem_patterns() {
        let code = [
            DOp::TxCounterInc { amount: 12 },
            DOp::TxCondSplit,
            DOp::Vote { ty: Ty::Ptr, a: Src::Slot(0), b: Src::Slot(1), c: Src::Slot(2), dst: 3 },
            DOp::Load { ty: Ty::I64, addr: Src::Slot(3), atomic: false, dst: 4 },
        ];
        let mut stats = FuseStats::default();
        let fuse = compute(&code, &[(0, 4)], &mut stats);
        assert_eq!(stats.tx_brackets, 1);
        assert_eq!(stats.vote_mem, 1);
        assert!(fuse[0] && fuse[2]);
        // tx_cond_split → vote is not a pattern.
        assert!(!fuse[1]);
        assert_eq!(stats.total(), 2);
    }

    #[test]
    fn pairs_never_span_blocks() {
        let code = [bin(2), bin(3)];
        let mut stats = FuseStats::default();
        // Same ops, but a block boundary between them.
        let fuse = compute(&code, &[(0, 1), (1, 2)], &mut stats);
        assert_eq!(fuse, vec![false, false]);
        assert_eq!(stats.total(), 0);
    }

    #[test]
    fn load_then_shadow_move_fuses() {
        let code = [
            DOp::Load { ty: Ty::I64, addr: Src::Slot(0), atomic: false, dst: 1 },
            DOp::MoveV { ty: Ty::I64, a: Src::Slot(1), dst: 2 },
        ];
        let mut stats = FuseStats::default();
        let fuse = compute(&code, &[(0, 2)], &mut stats);
        assert_eq!(fuse, vec![true, false]);
        assert_eq!(stats.alu_pairs, 1);
    }
}
