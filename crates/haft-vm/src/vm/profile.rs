//! Cycle-attribution profiling: per-function, per-op-class virtual-cycle
//! histograms priced off the scoreboard clock.
//!
//! The attribution is *telescoping*: each thread remembers the clock at
//! its previous op fetch, and at the next fetch the elapsed delta is
//! charged to the op fetched previously (the one whose issue moved the
//! clock). Phase boundaries flush the open delta, and a transaction
//! abort re-labels the rollback penalty to the `tx-abort` class. Because
//! every clock advance between 0 and a phase's final clock is charged to
//! exactly one cell, the cell total equals `cpu_cycles` *exactly* — not
//! approximately — which is the invariant the `profile` report section
//! asserts. Clock deltas that precede the first fetch of a phase (none
//! today, by construction) would land in a synthetic `(scheduler)`
//! bucket rather than vanish.

use std::collections::HashMap;

use haft_ir::inst::Op;

use super::decode::DOp;

/// Synthetic function id for cycles not attributable to any fetched op.
const SCHED_FUNC: u32 = u32::MAX;

/// Coarse operation classes for the per-class histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Arithmetic, logic, compares, moves, casts, selects, address math.
    Alu,
    /// Branches (including mispredict bubbles charged at the branch).
    Branch,
    /// Loads, stores, allocation.
    Mem,
    /// Atomic read-modify-write and compare-exchange.
    Atomic,
    /// Calls and returns.
    Call,
    /// Transaction bookkeeping (begin/end/split/counter).
    Tx,
    /// Rollback penalty after an abort.
    TxAbort,
    /// Three-way synchronization points: majority votes (TMR backend)
    /// and checksum verify-and-corrects (ABFT backend) — same latency,
    /// same non-replicated role.
    Vote,
    /// Lock/unlock.
    Sync,
    /// Output externalization.
    Emit,
    /// Everything else (nops, thread intrinsics, scheduler residue).
    Other,
}

impl OpClass {
    /// Stable name used in metrics and the report table.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Alu => "alu",
            OpClass::Branch => "branch",
            OpClass::Mem => "mem",
            OpClass::Atomic => "atomic",
            OpClass::Call => "call",
            OpClass::Tx => "tx",
            OpClass::TxAbort => "tx-abort",
            OpClass::Vote => "vote",
            OpClass::Sync => "sync",
            OpClass::Emit => "emit",
            OpClass::Other => "other",
        }
    }

    /// Classifies an interpreter op.
    pub fn of_op(op: &Op) -> OpClass {
        match op {
            Op::Bin { .. }
            | Op::Un { .. }
            | Op::Cmp { .. }
            | Op::Move { .. }
            | Op::Cast { .. }
            | Op::Select { .. }
            | Op::Gep { .. }
            | Op::Phi { .. } => OpClass::Alu,
            Op::Load { .. } | Op::Store { .. } | Op::Alloc { .. } => OpClass::Mem,
            Op::Rmw { .. } | Op::CmpXchg { .. } => OpClass::Atomic,
            Op::Br { .. } | Op::CondBr { .. } => OpClass::Branch,
            Op::Call { .. } | Op::Ret { .. } => OpClass::Call,
            Op::TxBegin | Op::TxEnd | Op::TxCondSplit | Op::TxCounterInc { .. } => OpClass::Tx,
            Op::TxAbort { .. } => OpClass::Tx,
            Op::Vote { .. } | Op::ChkCorrect { .. } => OpClass::Vote,
            Op::Lock { .. } | Op::Unlock { .. } => OpClass::Sync,
            Op::Emit { .. } => OpClass::Emit,
            Op::ThreadId | Op::NumThreads | Op::Nop => OpClass::Other,
        }
    }

    /// Classifies a decoded (fused-engine) op, mirroring [`Self::of_op`].
    pub(crate) fn of_dop(op: &DOp) -> OpClass {
        match op {
            DOp::Bin { .. }
            | DOp::Un { .. }
            | DOp::Cmp { .. }
            | DOp::MoveV { .. }
            | DOp::Cast { .. }
            | DOp::Select { .. }
            | DOp::Gep { .. } => OpClass::Alu,
            DOp::Load { .. } | DOp::Store { .. } | DOp::Alloc { .. } => OpClass::Mem,
            DOp::Rmw { .. } | DOp::CmpXchg { .. } => OpClass::Atomic,
            DOp::Br { .. } | DOp::CondBr { .. } => OpClass::Branch,
            DOp::CallDirect { .. } | DOp::CallInd { .. } | DOp::Ret { .. } => OpClass::Call,
            DOp::TxBegin | DOp::TxEnd | DOp::TxCondSplit | DOp::TxCounterInc { .. } => OpClass::Tx,
            DOp::TxAbortIlr | DOp::TxAbortExplicit => OpClass::Tx,
            DOp::Vote { .. } | DOp::ChkCorrect { .. } => OpClass::Vote,
            DOp::Lock { .. } | DOp::Unlock { .. } => OpClass::Sync,
            DOp::Emit { .. } => OpClass::Emit,
            DOp::ThreadIdD { .. } | DOp::NumThreadsD { .. } | DOp::Nop | DOp::TrapMalformed => {
                OpClass::Other
            }
        }
    }
}

#[derive(Clone, Copy, Default)]
struct ProfThread {
    last_clock: u64,
    pending: Option<(u32, OpClass)>,
}

/// The in-flight attribution state, one lane per VM thread.
pub(crate) struct Profiler {
    threads: Vec<ProfThread>,
    cells: HashMap<(u32, OpClass), u64>,
}

impl Profiler {
    pub(crate) fn new(n_threads: usize) -> Self {
        Profiler { threads: vec![ProfThread::default(); n_threads], cells: HashMap::new() }
    }

    /// Charges the clock delta since the last sync to the pending op.
    fn sync(&mut self, tid: usize, clock: u64) {
        let th = &mut self.threads[tid];
        let delta = clock.saturating_sub(th.last_clock);
        if delta > 0 {
            let key = th.pending.unwrap_or((SCHED_FUNC, OpClass::Other));
            *self.cells.entry(key).or_insert(0) += delta;
        }
        th.last_clock = clock;
    }

    /// Op-fetch hook: settles the previous op's delta, then makes
    /// `(fid, class)` the pending attribution target.
    pub(crate) fn fetch(&mut self, tid: usize, clock: u64, fid: u32, class: OpClass) {
        self.sync(tid, clock);
        self.threads[tid].pending = Some((fid, class));
    }

    /// Abort hook, called *before* the rollback penalty is applied at
    /// `clock`: settles the aborting op, then re-labels the pending cell
    /// so the penalty cycles land in `tx-abort` within `fid`.
    pub(crate) fn abort(&mut self, tid: usize, clock: u64, fid: u32) {
        self.sync(tid, clock);
        self.threads[tid].pending = Some((fid, OpClass::TxAbort));
    }

    /// Phase start: the thread got a fresh scoreboard (clock 0).
    pub(crate) fn phase_start(&mut self, tid: usize) {
        self.threads[tid] = ProfThread::default();
    }

    /// Phase end: settles the final open delta at the phase's last clock.
    pub(crate) fn flush(&mut self, tid: usize, clock: u64) {
        self.sync(tid, clock);
        self.threads[tid].pending = None;
    }

    /// Resolves function ids to names and freezes the histogram.
    pub(crate) fn into_profile(self, resolve: impl Fn(u32) -> String) -> CycleProfile {
        let mut cells: Vec<ProfileCell> = self
            .cells
            .into_iter()
            .map(|((fid, class), cycles)| ProfileCell {
                func: if fid == SCHED_FUNC { "(scheduler)".to_string() } else { resolve(fid) },
                class: class.name(),
                cycles,
            })
            .collect();
        cells.sort_by(|a, b| (&a.func, a.class).cmp(&(&b.func, b.class)));
        CycleProfile { cells }
    }
}

/// One histogram cell: cycles charged to `(function, op class)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileCell {
    pub func: String,
    pub class: &'static str,
    pub cycles: u64,
}

/// The frozen cycle-attribution histogram of one run. The cell total
/// equals the run's `cpu_cycles` exactly (see module docs).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CycleProfile {
    /// Cells sorted by function name, then class name.
    pub cells: Vec<ProfileCell>,
}

impl CycleProfile {
    /// Sum over every cell — must equal the run's `cpu_cycles`.
    pub fn total(&self) -> u64 {
        self.cells.iter().map(|c| c.cycles).sum()
    }

    /// Per-function totals, heaviest first (ties broken by name).
    pub fn by_function(&self) -> Vec<(String, u64)> {
        let mut agg: Vec<(String, u64)> = Vec::new();
        for cell in &self.cells {
            match agg.iter_mut().find(|(f, _)| *f == cell.func) {
                Some((_, n)) => *n += cell.cycles,
                None => agg.push((cell.func.clone(), cell.cycles)),
            }
        }
        agg.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        agg
    }

    /// Per-class totals, heaviest first (ties broken by name).
    pub fn by_class(&self) -> Vec<(&'static str, u64)> {
        let mut agg: Vec<(&'static str, u64)> = Vec::new();
        for cell in &self.cells {
            match agg.iter_mut().find(|(c, _)| *c == cell.class) {
                Some((_, n)) => *n += cell.cycles,
                None => agg.push((cell.class, cell.cycles)),
            }
        }
        agg.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telescoping_attribution_charges_every_cycle_once() {
        let mut p = Profiler::new(1);
        p.phase_start(0);
        p.fetch(0, 0, 1, OpClass::Alu); // first fetch at clock 0
        p.fetch(0, 4, 1, OpClass::Mem); // alu op moved the clock by 4
        p.fetch(0, 9, 2, OpClass::Alu); // mem op moved it by 5
        p.flush(0, 10); // final alu op moved it by 1
        let profile = p.into_profile(|fid| format!("f{fid}"));
        assert_eq!(profile.total(), 10);
        assert_eq!(profile.by_function(), vec![("f1".to_string(), 9), ("f2".to_string(), 1)]);
        assert_eq!(profile.by_class(), vec![("alu", 5), ("mem", 5)]);
    }

    #[test]
    fn abort_relabels_the_penalty() {
        let mut p = Profiler::new(1);
        p.phase_start(0);
        p.fetch(0, 0, 3, OpClass::Mem);
        p.abort(0, 2, 3); // the op itself cost 2
        p.flush(0, 162); // then a 160-cycle rollback penalty
        let profile = p.into_profile(|fid| format!("f{fid}"));
        assert_eq!(profile.total(), 162);
        assert_eq!(profile.by_class(), vec![("tx-abort", 160), ("mem", 2)]);
    }

    #[test]
    fn phases_reset_the_clock_lane() {
        let mut p = Profiler::new(1);
        p.phase_start(0);
        p.fetch(0, 0, 0, OpClass::Alu);
        p.flush(0, 7);
        p.phase_start(0); // new scoreboard: clock restarts at 0
        p.fetch(0, 0, 0, OpClass::Alu);
        p.flush(0, 5);
        let profile = p.into_profile(|_| "f".to_string());
        assert_eq!(profile.total(), 12);
    }
}
