//! VM unit tests: interpreter semantics, HAFT runtime, cost model.

use haft_ir::builder::FunctionBuilder;
use haft_ir::inst::{BinOp, CmpOp, Op, Operand, RmwOp};
use haft_ir::module::{GlobalId, Module};
use haft_ir::types::Ty;
use haft_ir::verify::verify_module;

use super::*;

fn run(m: &Module, cfg: VmConfig, spec: RunSpec<'_>) -> RunResult {
    verify_module(m).expect("test module verifies");
    Vm::run(m, cfg, spec)
}

fn run_fini(m: &Module) -> RunResult {
    run(m, VmConfig::default(), RunSpec { fini: Some("fini"), ..Default::default() })
}

/// Builds a module with a single no-arg `fini` function.
fn fini_module(build: impl FnOnce(&mut FunctionBuilder)) -> Module {
    let mut m = Module::new("t");
    let mut fb = FunctionBuilder::new("fini", &[], None);
    fb.set_non_local();
    build(&mut fb);
    m.push_func(fb.finish());
    m
}

#[test]
fn arithmetic_and_emit() {
    let m = fini_module(|fb| {
        let a = fb.add(Ty::I64, fb.iconst(Ty::I64, 40), fb.iconst(Ty::I64, 2));
        let b = fb.mul(Ty::I64, a, fb.iconst(Ty::I64, 10));
        let c = fb.bin(BinOp::Sub, Ty::I64, b, fb.iconst(Ty::I64, 20));
        fb.emit_out(Ty::I64, c);
        fb.ret(None);
    });
    let r = run_fini(&m);
    assert_eq!(r.outcome, RunOutcome::Completed);
    assert_eq!(r.output, vec![400]);
    assert!(r.instructions > 0 && r.wall_cycles > 0);
}

#[test]
fn signed_ops_on_narrow_types() {
    let m = fini_module(|fb| {
        // -1 as i8 is 0xff; ashr keeps the sign.
        let neg = fb.bin(BinOp::Sub, Ty::I8, fb.iconst(Ty::I8, 0), fb.iconst(Ty::I8, 1));
        let shifted = fb.bin(BinOp::AShr, Ty::I8, neg, fb.iconst(Ty::I8, 3));
        let wide = fb.cast(CastKind::SExt, Ty::I64, shifted);
        fb.emit_out(Ty::I64, wide);
        // sdiv rounds toward zero: -7 / 2 = -3.
        let a = fb.iconst(Ty::I64, -7);
        let q = fb.bin(BinOp::SDiv, Ty::I64, a, fb.iconst(Ty::I64, 2));
        fb.emit_out(Ty::I64, q);
        fb.ret(None);
    });
    let r = run_fini(&m);
    assert_eq!(r.output, vec![(-1i64) as u64, (-3i64) as u64]);
}

#[test]
fn float_math() {
    let m = fini_module(|fb| {
        let x = fb.bin(BinOp::FMul, Ty::F64, fb.fconst(1.5), fb.fconst(4.0));
        let y = fb.un(haft_ir::inst::UnOp::FSqrt, Ty::F64, fb.fconst(81.0));
        let z = fb.bin(BinOp::FAdd, Ty::F64, x, y);
        let out = fb.cast(CastKind::FpToSi, Ty::I64, z);
        fb.emit_out(Ty::I64, out);
        fb.ret(None);
    });
    let r = run_fini(&m);
    assert_eq!(r.output, vec![15]); // 6 + 9.
}

#[test]
fn loop_sum_via_global() {
    let mut m = Module::new("t");
    m.add_global("acc", 8);
    let g = Operand::GlobalAddr(GlobalId(0));
    let mut fb = FunctionBuilder::new("fini", &[], None);
    fb.set_non_local();
    fb.counted_loop(fb.iconst(Ty::I64, 0), fb.iconst(Ty::I64, 100), |b, i| {
        let cur = b.load(Ty::I64, g);
        let nxt = b.add(Ty::I64, cur, i);
        b.store(Ty::I64, nxt, g);
    });
    let total = fb.load(Ty::I64, g);
    fb.emit_out(Ty::I64, total);
    fb.ret(None);
    m.push_func(fb.finish());
    let r = run_fini(&m);
    assert_eq!(r.output, vec![4950]);
}

#[test]
fn calls_and_recursion() {
    let mut m = Module::new("t");
    // fact(n) = n <= 1 ? 1 : n * fact(n - 1).
    let mut fb = FunctionBuilder::new("fact", &[Ty::I64], Some(Ty::I64));
    let n = fb.param(0);
    let is_base = fb.cmp(CmpOp::SLe, Ty::I64, n, fb.iconst(Ty::I64, 1));
    let rec_blk = fb.new_block();
    let base_blk = fb.new_block();
    fb.condbr(is_base, base_blk, rec_blk);
    fb.switch_to(base_blk);
    fb.ret(Some(fb.iconst(Ty::I64, 1)));
    fb.switch_to(rec_blk);
    let nm1 = fb.sub(Ty::I64, n, fb.iconst(Ty::I64, 1));
    let sub = fb.call(haft_ir::module::FuncId(0), &[nm1.into()], Some(Ty::I64)).unwrap();
    let prod = fb.mul(Ty::I64, n, sub);
    fb.ret(Some(prod.into()));
    m.push_func(fb.finish());

    let mut main = FunctionBuilder::new("fini", &[], None);
    main.set_non_local();
    let v = main.call(haft_ir::module::FuncId(0), &[Operand::imm(10, Ty::I64)], Some(Ty::I64));
    main.emit_out(Ty::I64, v.unwrap());
    main.ret(None);
    m.push_func(main.finish());
    let r = run_fini(&m);
    assert_eq!(r.output, vec![3628800]);
}

#[test]
fn indirect_calls_resolve_function_addresses() {
    let mut m = Module::new("t");
    let mut sq = FunctionBuilder::new("sq", &[Ty::I64], Some(Ty::I64));
    let x = sq.param(0);
    let v = sq.mul(Ty::I64, x, x);
    sq.ret(Some(v.into()));
    let sq_id = m.push_func(sq.finish());

    let mut fb = FunctionBuilder::new("fini", &[], None);
    fb.set_non_local();
    let fp = fb.mov(Ty::Ptr, Operand::FuncAddr(sq_id));
    let r = fb.call_indirect(fp, &[Operand::imm(9, Ty::I64)], Some(Ty::I64)).unwrap();
    fb.emit_out(Ty::I64, r);
    fb.ret(None);
    m.push_func(fb.finish());
    let r = run_fini(&m);
    assert_eq!(r.output, vec![81]);
}

#[test]
fn bad_indirect_call_traps() {
    let m = fini_module(|fb| {
        let junk = fb.mov(Ty::Ptr, fb.iconst(Ty::Ptr, 12345));
        fb.call_indirect(junk, &[], None);
        fb.ret(None);
    });
    let r = run_fini(&m);
    assert!(matches!(r.outcome, RunOutcome::Trapped(Trap::BadIndirectCall { .. })));
}

#[test]
fn out_of_bounds_traps() {
    let m = fini_module(|fb| {
        fb.load(Ty::I64, fb.iconst(Ty::Ptr, 0));
        fb.ret(None);
    });
    let r = run_fini(&m);
    assert!(matches!(r.outcome, RunOutcome::Trapped(Trap::OutOfBounds { .. })));
}

#[test]
fn div_by_zero_traps() {
    let m = fini_module(|fb| {
        let z = fb.mov(Ty::I64, fb.iconst(Ty::I64, 0));
        fb.bin(BinOp::SDiv, Ty::I64, fb.iconst(Ty::I64, 7), z);
        fb.ret(None);
    });
    let r = run_fini(&m);
    assert_eq!(r.outcome, RunOutcome::Trapped(Trap::DivByZero));
}

#[test]
fn infinite_loop_hangs() {
    let m = fini_module(|fb| {
        let l = fb.new_block();
        fb.br(l);
        fb.switch_to(l);
        fb.br(l);
    });
    let cfg = VmConfig { max_instructions: 10_000, ..Default::default() };
    let r = run(&m, cfg, RunSpec { fini: Some("fini"), ..Default::default() });
    assert_eq!(r.outcome, RunOutcome::Hang);
}

#[test]
fn parallel_workers_partition_work() {
    let mut m = Module::new("t");
    m.add_global("cells", 16 * 8);
    let g = Operand::GlobalAddr(GlobalId(0));
    // worker(tid, n): cells[tid] = tid * 100.
    let mut w = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
    w.set_non_local();
    let tid = w.param(0);
    let cell = w.gep(g, tid, 8, 0);
    let val = w.mul(Ty::I64, tid, w.iconst(Ty::I64, 100));
    w.store(Ty::I64, val, cell);
    w.ret(None);
    m.push_func(w.finish());
    // fini: emit sum of cells.
    let mut fb = FunctionBuilder::new("fini", &[], None);
    fb.set_non_local();
    let n = fb.num_threads();
    let acc = fb.alloc(fb.iconst(Ty::I64, 8));
    fb.store(Ty::I64, fb.iconst(Ty::I64, 0), acc);
    fb.counted_loop(fb.iconst(Ty::I64, 0), n, |b, i| {
        let cell = b.gep(g, i, 8, 0);
        let v = b.load(Ty::I64, cell);
        let cur = b.load(Ty::I64, acc);
        let nxt = b.add(Ty::I64, cur, v);
        b.store(Ty::I64, nxt, acc);
    });
    let total = fb.load(Ty::I64, acc);
    fb.emit_out(Ty::I64, total);
    fb.ret(None);
    m.push_func(fb.finish());

    let cfg = VmConfig { n_threads: 4, ..Default::default() };
    let r =
        run(&m, cfg, RunSpec { worker: Some("worker"), fini: Some("fini"), ..Default::default() });
    assert_eq!(r.outcome, RunOutcome::Completed);
    assert_eq!(r.output, vec![600]); // 0+100+200+300.
}

#[test]
fn locks_serialize_shared_counter() {
    let mut m = Module::new("t");
    m.add_global("lock", 8);
    m.add_global("counter", 8);
    let lock = Operand::GlobalAddr(GlobalId(0));
    let ctr = Operand::GlobalAddr(GlobalId(1));
    let mut w = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
    w.set_non_local();
    w.counted_loop(w.iconst(Ty::I64, 0), w.iconst(Ty::I64, 50), |b, _| {
        b.lock(lock);
        let v = b.load(Ty::I64, ctr);
        let nv = b.add(Ty::I64, v, b.iconst(Ty::I64, 1));
        b.store(Ty::I64, nv, ctr);
        b.unlock(lock);
    });
    w.ret(None);
    m.push_func(w.finish());
    let mut fb = FunctionBuilder::new("fini", &[], None);
    fb.set_non_local();
    let v = fb.load(Ty::I64, ctr);
    fb.emit_out(Ty::I64, v);
    fb.ret(None);
    m.push_func(fb.finish());

    let cfg = VmConfig { n_threads: 4, quantum: 7, ..Default::default() };
    let r =
        run(&m, cfg, RunSpec { worker: Some("worker"), fini: Some("fini"), ..Default::default() });
    assert_eq!(r.outcome, RunOutcome::Completed);
    assert_eq!(r.output, vec![200]);
}

#[test]
fn atomic_rmw_is_scheduler_safe() {
    let mut m = Module::new("t");
    m.add_global("counter", 8);
    let ctr = Operand::GlobalAddr(GlobalId(0));
    let mut w = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
    w.set_non_local();
    w.counted_loop(w.iconst(Ty::I64, 0), w.iconst(Ty::I64, 100), |b, _| {
        b.rmw(RmwOp::Add, Ty::I64, ctr, b.iconst(Ty::I64, 1));
    });
    w.ret(None);
    m.push_func(w.finish());
    let mut fb = FunctionBuilder::new("fini", &[], None);
    fb.set_non_local();
    let v = fb.load(Ty::I64, ctr);
    fb.emit_out(Ty::I64, v);
    fb.ret(None);
    m.push_func(fb.finish());
    let cfg = VmConfig { n_threads: 3, quantum: 5, ..Default::default() };
    let r =
        run(&m, cfg, RunSpec { worker: Some("worker"), fini: Some("fini"), ..Default::default() });
    assert_eq!(r.output, vec![300]);
}

#[test]
fn transactions_commit_buffered_writes() {
    let mut m = Module::new("t");
    m.add_global("x", 8);
    let g = Operand::GlobalAddr(GlobalId(0));
    let m2 = {
        let mut fb = FunctionBuilder::new("fini", &[], None);
        fb.set_non_local();
        fb.emit_op(Op::TxBegin);
        fb.store(Ty::I64, fb.iconst(Ty::I64, 7), g);
        // Read-your-writes inside the transaction.
        let v = fb.load(Ty::I64, g);
        fb.emit_op(Op::TxEnd);
        fb.emit_out(Ty::I64, v);
        let after = fb.load(Ty::I64, g);
        fb.emit_out(Ty::I64, after);
        fb.ret(None);
        m.push_func(fb.finish());
        m
    };
    let r = run_fini(&m2);
    assert_eq!(r.outcome, RunOutcome::Completed);
    assert_eq!(r.output, vec![7, 7]);
    assert_eq!(r.htm.commits, 1);
    assert_eq!(r.htm.started, 1);
}

#[test]
fn explicit_abort_retries_then_falls_back_to_failstop() {
    // tx_begin; tx_abort  -- deterministic abort storm: 1 try + 3 retries,
    // then fallback executes the abort non-transactionally -> Detected.
    let m = fini_module(|fb| {
        fb.emit_op(Op::TxBegin);
        fb.emit_op(Op::TxAbort { code: haft_ir::inst::AbortCode::Explicit });
    });
    let r = run_fini(&m);
    assert_eq!(r.outcome, RunOutcome::Detected);
    assert_eq!(r.htm.started, 4, "1 attempt + 3 retries");
    assert_eq!(r.htm.aborts[&haft_htm::AbortCause::Explicit], 4);
    assert_eq!(r.htm.fallbacks, 1);
}

#[test]
fn ilr_abort_in_tx_counts_as_recovery_attempt() {
    let m = fini_module(|fb| {
        fb.emit_op(Op::TxBegin);
        fb.emit_op(Op::TxAbort { code: haft_ir::inst::AbortCode::IlrDetected });
    });
    let r = run_fini(&m);
    // Deterministic divergence is re-detected each retry; final fallback
    // execution hits the check outside a transaction: fail-stop.
    assert_eq!(r.outcome, RunOutcome::Detected);
    assert_eq!(r.detections, 5, "4 transactional + 1 fallback");
    assert_eq!(r.recoveries, 4);
}

#[test]
fn emit_inside_tx_aborts_then_executes_in_fallback() {
    let m = fini_module(|fb| {
        fb.emit_op(Op::TxBegin);
        fb.emit_out(Ty::I64, fb.iconst(Ty::I64, 42));
        fb.emit_op(Op::TxEnd);
        fb.ret(None);
    });
    let r = run_fini(&m);
    assert_eq!(r.outcome, RunOutcome::Completed);
    assert_eq!(r.output, vec![42]);
    assert_eq!(r.htm.fallbacks, 1);
    assert!(r.htm.aborts[&haft_htm::AbortCause::Unfriendly] >= 1);
}

#[test]
fn cond_split_splits_long_transactions() {
    let mut m = Module::new("t");
    m.add_global("acc", 8);
    let g = Operand::GlobalAddr(GlobalId(0));
    let mut fb = FunctionBuilder::new("fini", &[], None);
    fb.set_non_local();
    fb.emit_op(Op::TxBegin);
    fb.counted_loop(fb.iconst(Ty::I64, 0), fb.iconst(Ty::I64, 200), |b, i| {
        b.emit_op(Op::TxCondSplit);
        let cur = b.load(Ty::I64, g);
        let nxt = b.add(Ty::I64, cur, i);
        b.store(Ty::I64, nxt, g);
        b.emit_op(Op::TxCounterInc { amount: 10 });
    });
    fb.emit_op(Op::TxEnd);
    let v = fb.load(Ty::I64, g);
    fb.emit_out(Ty::I64, v);
    fb.ret(None);
    m.push_func(fb.finish());

    let cfg = VmConfig { tx_threshold: 100, ..Default::default() };
    let r = run(&m, cfg, RunSpec { fini: Some("fini"), ..Default::default() });
    assert_eq!(r.outcome, RunOutcome::Completed);
    assert_eq!(r.output, vec![19900]);
    // 200 iterations * 10 per iteration / threshold 100 => ~20 splits.
    assert!(r.htm.commits >= 15, "commits = {}", r.htm.commits);
}

#[test]
fn lock_elision_keeps_critical_section_transactional() {
    let mut m = Module::new("t");
    m.add_global("lock", 8);
    m.add_global("x", 8);
    let lock = Operand::GlobalAddr(GlobalId(0));
    let g = Operand::GlobalAddr(GlobalId(1));
    let mut fb = FunctionBuilder::new("fini", &[], None);
    fb.set_non_local();
    fb.emit_op(Op::TxBegin);
    fb.lock(lock);
    let v = fb.load(Ty::I64, g);
    let nv = fb.add(Ty::I64, v, fb.iconst(Ty::I64, 5));
    fb.store(Ty::I64, nv, g);
    fb.unlock(lock);
    fb.emit_op(Op::TxEnd);
    let out = fb.load(Ty::I64, g);
    fb.emit_out(Ty::I64, out);
    fb.ret(None);
    m.push_func(fb.finish());

    let cfg = VmConfig { lock_elision: true, ..Default::default() };
    let r = run(&m, cfg, RunSpec { fini: Some("fini"), ..Default::default() });
    assert_eq!(r.outcome, RunOutcome::Completed);
    assert_eq!(r.output, vec![5]);
    assert_eq!(r.htm.commits, 1, "elided section commits with enclosing tx");
    assert_eq!(r.htm.total_aborts(), 0);
}

#[test]
fn fault_injection_corrupts_exactly_one_register() {
    let build = |fault: Option<FaultPlan>| {
        let m = fini_module(|fb| {
            let a = fb.add(Ty::I64, fb.iconst(Ty::I64, 1), fb.iconst(Ty::I64, 2));
            let b = fb.mul(Ty::I64, a, fb.iconst(Ty::I64, 10));
            fb.emit_out(Ty::I64, b);
            fb.ret(None);
        });
        let cfg = VmConfig { fault, ..Default::default() };
        run(&m, cfg, RunSpec { fini: Some("fini"), ..Default::default() })
    };
    let clean = build(None);
    assert_eq!(clean.output, vec![30]);
    assert_eq!(clean.register_writes, 2);

    // Corrupt the first register write (a = 3 -> 3 ^ 1 = 2): b = 20.
    let faulty = build(Some(FaultPlan { occurrence: 0, xor_mask: 1 }));
    assert_eq!(faulty.output, vec![20]);

    // Corrupt the second (b = 30 -> 30 ^ 4 = 26).
    let faulty2 = build(Some(FaultPlan { occurrence: 1, xor_mask: 4 }));
    assert_eq!(faulty2.output, vec![26]);
}

#[test]
fn vote_resolves_two_of_three_majority() {
    // vote(a, b, c) with agreeing copies is the identity and counts
    // nothing; a single divergent copy is masked and counted.
    let build = |a: i64, b: i64, c: i64| {
        let m = fini_module(|fb| {
            let av = fb.mov(Ty::I64, fb.iconst(Ty::I64, a));
            let bv = fb.mov(Ty::I64, fb.iconst(Ty::I64, b));
            let cv = fb.mov(Ty::I64, fb.iconst(Ty::I64, c));
            let v = fb
                .emit_op(Op::Vote { ty: Ty::I64, a: av.into(), b: bv.into(), c: cv.into() })
                .unwrap();
            fb.emit_out(Ty::I64, v);
            fb.ret(None);
        });
        run_fini(&m)
    };
    let clean = build(7, 7, 7);
    assert_eq!(clean.output, vec![7]);
    assert_eq!(clean.corrected_by_vote, 0);
    // Any single divergent position is outvoted.
    for (a, b, c) in [(9, 7, 7), (7, 9, 7), (7, 7, 9)] {
        let r = build(a, b, c);
        assert_eq!(r.output, vec![7], "vote({a},{b},{c})");
        assert_eq!(r.corrected_by_vote, 1);
        assert_eq!(r.outcome, RunOutcome::Completed);
    }
}

#[test]
fn vote_with_three_way_divergence_fail_stops() {
    let m = fini_module(|fb| {
        let a = fb.mov(Ty::I64, fb.iconst(Ty::I64, 1));
        let b = fb.mov(Ty::I64, fb.iconst(Ty::I64, 2));
        let c = fb.mov(Ty::I64, fb.iconst(Ty::I64, 3));
        let v =
            fb.emit_op(Op::Vote { ty: Ty::I64, a: a.into(), b: b.into(), c: c.into() }).unwrap();
        fb.emit_out(Ty::I64, v);
        fb.ret(None);
    });
    let r = run_fini(&m);
    // Unrecoverable divergence outside a transaction: detected fail-stop,
    // like a failed ILR check — nothing reaches the output.
    assert_eq!(r.outcome, RunOutcome::Detected);
    assert_eq!(r.detections, 1);
    assert_eq!(r.corrected_by_vote, 0);
    assert!(r.output.is_empty());
}

#[test]
fn vote_result_is_not_a_fault_injection_target() {
    // The vote output models a fused compare+select forwarded into its
    // consumer: it must not appear in the register-write stream, so the
    // fault population of a voted program counts only the real writes.
    let m = fini_module(|fb| {
        let a = fb.mov(Ty::I64, fb.iconst(Ty::I64, 5));
        let b = fb.mov(Ty::I64, fb.iconst(Ty::I64, 5));
        let c = fb.mov(Ty::I64, fb.iconst(Ty::I64, 5));
        let v =
            fb.emit_op(Op::Vote { ty: Ty::I64, a: a.into(), b: b.into(), c: c.into() }).unwrap();
        fb.emit_out(Ty::I64, v);
        fb.ret(None);
    });
    let r = run_fini(&m);
    assert_eq!(r.register_writes, 3, "three moves, no vote write");
    // A fault on any of the three inputs is outvoted by the other two.
    for occ in 0..3 {
        let cfg = VmConfig {
            fault: Some(FaultPlan { occurrence: occ, xor_mask: 0xff }),
            ..Default::default()
        };
        let f = run(&m, cfg, RunSpec { fini: Some("fini"), ..Default::default() });
        assert_eq!(f.output, vec![5], "occurrence {occ}");
        assert_eq!(f.corrected_by_vote, 1);
    }
}

#[test]
fn chk_correct_masks_a_single_divergent_lane() {
    // chk_correct(a, b, c) mirrors vote's two-of-three majority but
    // counts toward the ABFT correction counter, not the vote counter.
    let build = |a: i64, b: i64, c: i64| {
        let m = fini_module(|fb| {
            let av = fb.mov(Ty::I64, fb.iconst(Ty::I64, a));
            let bv = fb.mov(Ty::I64, fb.iconst(Ty::I64, b));
            let cv = fb.mov(Ty::I64, fb.iconst(Ty::I64, c));
            let v = fb
                .emit_op(Op::ChkCorrect { ty: Ty::I64, a: av.into(), b: bv.into(), c: cv.into() })
                .unwrap();
            fb.emit_out(Ty::I64, v);
            fb.ret(None);
        });
        run_fini(&m)
    };
    let clean = build(7, 7, 7);
    assert_eq!(clean.output, vec![7]);
    assert_eq!(clean.corrected_by_checksum, 0);
    assert_eq!(clean.corrected_by_vote, 0);
    for (a, b, c) in [(9, 7, 7), (7, 9, 7), (7, 7, 9)] {
        let r = build(a, b, c);
        assert_eq!(r.output, vec![7], "chk_correct({a},{b},{c})");
        assert_eq!(r.corrected_by_checksum, 1);
        assert_eq!(r.corrected_by_vote, 0);
        assert_eq!(r.outcome, RunOutcome::Completed);
    }
}

#[test]
fn chk_correct_with_three_way_divergence_fail_stops() {
    let m = fini_module(|fb| {
        let a = fb.mov(Ty::I64, fb.iconst(Ty::I64, 1));
        let b = fb.mov(Ty::I64, fb.iconst(Ty::I64, 2));
        let c = fb.mov(Ty::I64, fb.iconst(Ty::I64, 3));
        let v = fb
            .emit_op(Op::ChkCorrect { ty: Ty::I64, a: a.into(), b: b.into(), c: c.into() })
            .unwrap();
        fb.emit_out(Ty::I64, v);
        fb.ret(None);
    });
    let r = run_fini(&m);
    // Uncorrectable divergence fail-stops through the ILR detect path.
    assert_eq!(r.outcome, RunOutcome::Detected);
    assert_eq!(r.detections, 1);
    assert_eq!(r.corrected_by_checksum, 0);
    assert!(r.output.is_empty());
}

#[test]
fn chk_correct_result_is_not_a_fault_injection_target() {
    // Like the vote, the correction epilogue sits outside the
    // fault-injection target set: its write is forwarded, so the fault
    // population counts only the real (unprotected) writes.
    let m = fini_module(|fb| {
        let a = fb.mov(Ty::I64, fb.iconst(Ty::I64, 5));
        let b = fb.mov(Ty::I64, fb.iconst(Ty::I64, 5));
        let c = fb.mov(Ty::I64, fb.iconst(Ty::I64, 5));
        let v = fb
            .emit_op(Op::ChkCorrect { ty: Ty::I64, a: a.into(), b: b.into(), c: c.into() })
            .unwrap();
        fb.emit_out(Ty::I64, v);
        fb.ret(None);
    });
    let r = run_fini(&m);
    assert_eq!(r.register_writes, 3, "three moves, no chk_correct write");
    for occ in 0..3 {
        let cfg = VmConfig {
            fault: Some(FaultPlan { occurrence: occ, xor_mask: 0xff }),
            ..Default::default()
        };
        let f = run(&m, cfg, RunSpec { fini: Some("fini"), ..Default::default() });
        assert_eq!(f.output, vec![5], "occurrence {occ}");
        assert_eq!(f.corrected_by_checksum, 1);
    }
}

#[test]
fn conflicting_transactions_abort_and_recover() {
    // Two threads transactionally increment the same cell in a loop; the
    // HTM must serialize them via conflict aborts yet deliver a correct
    // total because retried transactions re-read the current value.
    let mut m = Module::new("t");
    m.add_global("x", 8);
    let g = Operand::GlobalAddr(GlobalId(0));
    let mut w = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
    w.set_non_local();
    w.counted_loop(w.iconst(Ty::I64, 0), w.iconst(Ty::I64, 60), |b, _| {
        b.emit_op(Op::TxBegin);
        let v = b.load(Ty::I64, g);
        let nv = b.add(Ty::I64, v, b.iconst(Ty::I64, 1));
        b.store(Ty::I64, nv, g);
        b.emit_op(Op::TxEnd);
    });
    w.ret(None);
    m.push_func(w.finish());
    let mut fb = FunctionBuilder::new("fini", &[], None);
    fb.set_non_local();
    let v = fb.load(Ty::I64, g);
    fb.emit_out(Ty::I64, v);
    fb.ret(None);
    m.push_func(fb.finish());

    let cfg = VmConfig { n_threads: 2, quantum: 9, ..Default::default() };
    let r =
        run(&m, cfg, RunSpec { worker: Some("worker"), fini: Some("fini"), ..Default::default() });
    assert_eq!(r.outcome, RunOutcome::Completed);
    // Transactional increments are atomic: no lost updates even though
    // some transactions abort. (Fallback-mode races are possible only
    // after 3 consecutive aborts of the same attempt, which the quantum
    // interleaving here does not produce.)
    assert_eq!(r.output, vec![120]);
}

#[test]
fn coverage_accounts_tx_cycles() {
    let m = fini_module(|fb| {
        fb.emit_op(Op::TxBegin);
        let mut v = fb.mov(Ty::I64, fb.iconst(Ty::I64, 1));
        for _ in 0..50 {
            v = fb.add(Ty::I64, v, fb.iconst(Ty::I64, 1));
        }
        fb.emit_op(Op::TxEnd);
        fb.ret(None);
    });
    let r = run_fini(&m);
    assert!(r.htm.coverage_pct() > 30.0, "coverage = {}", r.htm.coverage_pct());
    assert!(r.htm.coverage_pct() <= 100.0);
}

#[test]
fn scoreboard_shows_ilp_sensitivity() {
    // Serial dependent chain vs. independent ops: same instruction count,
    // very different cycle counts.
    let serial = fini_module(|fb| {
        let mut v = fb.mov(Ty::I64, fb.iconst(Ty::I64, 1));
        for _ in 0..200 {
            v = fb.mul(Ty::I64, v, fb.iconst(Ty::I64, 3));
        }
        fb.ret(None);
        let _ = v;
    });
    let parallel = fini_module(|fb| {
        let mut acc = Vec::new();
        for i in 0..200 {
            acc.push(fb.mul(Ty::I64, fb.iconst(Ty::I64, i), fb.iconst(Ty::I64, 3)));
        }
        fb.ret(None);
        let _ = acc;
    });
    let rs = run_fini(&serial);
    let rp = run_fini(&parallel);
    assert!(
        rs.wall_cycles > rp.wall_cycles * 3,
        "serial {} vs parallel {}",
        rs.wall_cycles,
        rp.wall_cycles
    );
}

#[test]
fn deterministic_given_seed() {
    let mk = || {
        let mut m = Module::new("t");
        m.add_global("x", 8);
        let g = Operand::GlobalAddr(GlobalId(0));
        let mut w = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
        w.set_non_local();
        w.counted_loop(w.iconst(Ty::I64, 0), w.iconst(Ty::I64, 30), |b, _| {
            b.rmw(RmwOp::Add, Ty::I64, g, b.iconst(Ty::I64, 1));
        });
        w.ret(None);
        m.push_func(w.finish());
        m
    };
    let m = mk();
    let cfg = VmConfig { n_threads: 3, seed: 777, ..Default::default() };
    let r1 = run(&m, cfg.clone(), RunSpec { worker: Some("worker"), ..Default::default() });
    let r2 = run(&m, cfg, RunSpec { worker: Some("worker"), ..Default::default() });
    assert_eq!(r1.wall_cycles, r2.wall_cycles);
    assert_eq!(r1.instructions, r2.instructions);
    assert_eq!(r1.register_writes, r2.register_writes);
}

use haft_ir::inst::CastKind;

#[test]
fn adaptive_threshold_keeps_protection_under_conflicts() {
    // Two threads transactionally hammer one cell. With a fixed oversized
    // threshold the retries exhaust and execution degrades to the
    // unprotected fallback; adaptive sizing shrinks the transactions
    // instead, keeping most of the execution recoverable.
    let mk = || {
        let mut m = Module::new("t");
        m.add_global("x", 8);
        let g = Operand::GlobalAddr(GlobalId(0));
        let mut w = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
        w.set_non_local();
        w.emit_op(Op::TxBegin);
        w.counted_loop(w.iconst(Ty::I64, 0), w.iconst(Ty::I64, 400), |b, _| {
            b.emit_op(Op::TxCondSplit);
            let v = b.load(Ty::I64, g);
            let nv = b.add(Ty::I64, v, b.iconst(Ty::I64, 1));
            b.store(Ty::I64, nv, g);
            b.emit_op(Op::TxCounterInc { amount: 8 });
        });
        w.emit_op(Op::TxEnd);
        w.ret(None);
        m.push_func(w.finish());
        m
    };
    let m = mk();
    let base = VmConfig { n_threads: 2, tx_threshold: 4000, ..Default::default() };
    let fixed = Vm::run(&m, base.clone(), RunSpec { worker: Some("worker"), ..Default::default() });
    let mut acfg = base;
    acfg.adaptive_threshold = true;
    let adaptive = Vm::run(&m, acfg, RunSpec { worker: Some("worker"), ..Default::default() });
    assert_eq!(adaptive.outcome, RunOutcome::Completed);
    // Protection: adaptive stays transactional where fixed gave up.
    assert!(
        adaptive.htm.coverage_pct() > fixed.htm.coverage_pct() + 10.0,
        "adaptive {:.1}% vs fixed {:.1}%",
        adaptive.htm.coverage_pct(),
        fixed.htm.coverage_pct()
    );
    assert!(adaptive.htm.commits > fixed.htm.commits);
    // And the cost of that protection is bounded.
    assert!(
        adaptive.wall_cycles < fixed.wall_cycles * 8,
        "adaptive {} vs fixed {}",
        adaptive.wall_cycles,
        fixed.wall_cycles
    );
}

#[test]
fn phase_cycles_partition_wall_cycles() {
    // A three-phase program: init seeds a global, workers add to it,
    // fini emits. Every phase must be charged, and the per-phase split
    // must sum exactly to the end-to-end wall-cycle count.
    let mut m = Module::new("t");
    let g = m.add_global("acc", 8 * 4);
    let mut ib = FunctionBuilder::new("init", &[], None);
    ib.set_non_local();
    ib.store(Ty::I64, ib.iconst(Ty::I64, 5), Operand::GlobalAddr(g));
    ib.ret(None);
    m.push_func(ib.finish());
    let mut wb = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
    wb.set_non_local();
    let tid = wb.param(0);
    let off = wb.mul(Ty::I64, tid, wb.iconst(Ty::I64, 8));
    let slot = wb.add(Ty::I64, Operand::GlobalAddr(g), off);
    wb.counted_loop(wb.iconst(Ty::I64, 0), wb.iconst(Ty::I64, 50), |b, i| {
        let cur = b.load(Ty::I64, slot);
        let nxt = b.add(Ty::I64, cur, i);
        b.store(Ty::I64, nxt, slot);
    });
    wb.ret(None);
    m.push_func(wb.finish());
    let mut fb = FunctionBuilder::new("fini", &[], None);
    fb.set_non_local();
    let v = fb.load(Ty::I64, Operand::GlobalAddr(g));
    fb.emit_out(Ty::I64, v);
    fb.ret(None);
    m.push_func(fb.finish());

    let spec = RunSpec { init: Some("init"), worker: Some("worker"), fini: Some("fini") };
    let cfg = VmConfig { n_threads: 2, ..Default::default() };
    let r = run(&m, cfg, spec);
    assert_eq!(r.outcome, RunOutcome::Completed);
    assert!(r.phases.init > 0 && r.phases.worker > 0 && r.phases.fini > 0);
    assert_eq!(r.phases.init + r.phases.worker + r.phases.fini, r.wall_cycles);
    assert_eq!(r.phases.service_cycles(), r.wall_cycles - r.phases.init);
    // The parallel phase dominates this program.
    assert!(r.phases.worker > r.phases.init + r.phases.fini);

    // A run with no init phase charges nothing to it.
    let no_init =
        run(&m, VmConfig::default(), RunSpec { fini: Some("fini"), ..Default::default() });
    assert_eq!(no_init.phases.init, 0);
    assert_eq!(no_init.phases.fini, no_init.wall_cycles);
}
