//! Dev probe: per-workload overheads and abort profiles.
use haft::Experiment;
use haft_passes::HardenConfig;
use haft_vm::VmConfig;
use haft_workloads::{all_workloads, Scale};

fn main() {
    let threads = 8;
    println!(
        "{:<14} {:>8} {:>6} {:>6} {:>6} {:>7} {:>7} {:>6}",
        "bench", "nat Mcyc", "IPC", "ILR", "TX", "HAFT", "abort%", "cov%"
    );
    for w in all_workloads(Scale::Large) {
        let report = Experiment::workload(&w)
            .vm(VmConfig { n_threads: threads, tx_threshold: 1000, ..Default::default() })
            .compare(&[HardenConfig::ilr_only(), HardenConfig::tx_only(), HardenConfig::haft()]);
        assert!(report.outputs_agree(), "{}: output diverged or run failed", w.name);
        let nat = &report.baseline().run;
        let ipc = nat.instructions as f64 / nat.cpu_cycles as f64;
        let haft = report.variant("HAFT").unwrap();
        println!(
            "{:<14} {:>8.2} {:>6.2} {:>6.2} {:>6.2} {:>7.2} {:>7.2} {:>6.1}",
            w.name,
            nat.wall_cycles as f64 / 1e6,
            ipc,
            report.overhead("ILR").unwrap(),
            report.overhead("TX").unwrap(),
            report.overhead("HAFT").unwrap(),
            haft.run.htm.abort_rate_pct(),
            haft.run.htm.coverage_pct()
        );
    }
}
