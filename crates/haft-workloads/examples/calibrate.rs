//! Dev probe: per-workload overheads and abort profiles.
use haft_passes::{harden, HardenConfig};
use haft_vm::{RunOutcome, Vm, VmConfig};
use haft_workloads::{all_workloads, Scale};

fn main() {
    let threads = 8;
    println!(
        "{:<14} {:>8} {:>6} {:>6} {:>6} {:>7} {:>7} {:>6}",
        "bench", "nat Mcyc", "IPC", "ILR", "TX", "HAFT", "abort%", "cov%"
    );
    for w in all_workloads(Scale::Large) {
        let cfg = |tx: u64| VmConfig { n_threads: threads, tx_threshold: tx, ..Default::default() };
        let nat = Vm::run(&w.module, cfg(1000), w.run_spec());
        assert_eq!(nat.outcome, RunOutcome::Completed, "{} native", w.name);
        let ipc = nat.instructions as f64 / nat.cpu_cycles as f64;
        let mut row = vec![];
        for hc in [HardenConfig::ilr_only(), HardenConfig::tx_only(), HardenConfig::haft()] {
            let hm = harden(&w.module, &hc);
            let r = Vm::run(&hm, cfg(1000), w.run_spec());
            assert_eq!(r.outcome, RunOutcome::Completed, "{} hardened", w.name);
            assert_eq!(r.output, nat.output, "{}", w.name);
            row.push((
                r.wall_cycles as f64 / nat.wall_cycles as f64,
                r.htm.abort_rate_pct(),
                r.htm.coverage_pct(),
            ));
        }
        println!(
            "{:<14} {:>8.2} {:>6.2} {:>6.2} {:>6.2} {:>7.2} {:>7.2} {:>6.1}",
            w.name,
            nat.wall_cycles as f64 / 1e6,
            ipc,
            row[0].0,
            row[1].0,
            row[2].0,
            row[2].1,
            row[2].2
        );
    }
}
