//! Deterministic input synthesis for the workload kernels.

use haft_ir::rng::Prng;

/// Seed shared by all workload inputs; fixed so that every experiment in
/// the repository is reproducible bit-for-bit.
pub const DATA_SEED: u64 = 0x4841_4654_2016; // "HAFT" 2016.

/// `n` pseudo-random bytes.
pub fn random_bytes(seed: u64, n: usize) -> Vec<u8> {
    let mut rng = Prng::new(DATA_SEED ^ seed);
    (0..n).map(|_| rng.next_u64() as u8).collect()
}

/// `n` little-endian `i64` values in `[0, bound)`, as raw bytes.
pub fn random_i64s(seed: u64, n: usize, bound: u64) -> Vec<u8> {
    let mut rng = Prng::new(DATA_SEED ^ seed);
    let mut out = Vec::with_capacity(n * 8);
    for _ in 0..n {
        out.extend_from_slice(&rng.below(bound).to_le_bytes());
    }
    out
}

/// `n` little-endian `f64` values in `[lo, hi)`, as raw bytes.
pub fn random_f64s(seed: u64, n: usize, lo: f64, hi: f64) -> Vec<u8> {
    let mut rng = Prng::new(DATA_SEED ^ seed);
    let mut out = Vec::with_capacity(n * 8);
    for _ in 0..n {
        let v = lo + rng.unit_f64() * (hi - lo);
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

/// Text-like bytes: lowercase words of 2–8 letters separated by spaces,
/// drawn from a Zipf-ish word population (for `wordcount`/`stringmatch`).
pub fn random_text(seed: u64, n: usize, vocabulary: usize) -> Vec<u8> {
    let mut rng = Prng::new(DATA_SEED ^ seed);
    // Pre-generate the vocabulary.
    let words: Vec<Vec<u8>> = (0..vocabulary)
        .map(|_| {
            let len = 2 + rng.below(7) as usize;
            (0..len).map(|_| b'a' + rng.below(26) as u8).collect()
        })
        .collect();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        // Zipf-ish: prefer low indices.
        let r = rng.unit_f64();
        let idx = ((vocabulary as f64).powf(r) - 1.0) as usize % vocabulary;
        out.extend_from_slice(&words[idx]);
        out.push(b' ');
    }
    out.truncate(n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(random_bytes(1, 64), random_bytes(1, 64));
        assert_ne!(random_bytes(1, 64), random_bytes(2, 64));
        assert_eq!(random_i64s(3, 8, 100), random_i64s(3, 8, 100));
    }

    #[test]
    fn i64s_respect_bound() {
        let bytes = random_i64s(7, 100, 50);
        for c in bytes.chunks(8) {
            let v = u64::from_le_bytes(c.try_into().unwrap());
            assert!(v < 50);
        }
    }

    #[test]
    fn f64s_respect_range() {
        let bytes = random_f64s(9, 100, -2.0, 3.0);
        for c in bytes.chunks(8) {
            let v = f64::from_bits(u64::from_le_bytes(c.try_into().unwrap()));
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn text_is_words_and_spaces() {
        let t = random_text(5, 1000, 64);
        assert_eq!(t.len(), 1000);
        assert!(t.iter().all(|&b| b == b' ' || b.is_ascii_lowercase()));
        assert!(t.iter().filter(|&&b| b == b' ').count() > 50);
    }
}
