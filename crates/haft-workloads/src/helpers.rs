//! Shared IR-building helpers for the workload kernels.

use haft_ir::builder::FunctionBuilder;
use haft_ir::function::ValueId;
use haft_ir::inst::{BinOp, Operand};
use haft_ir::types::Ty;

/// Computes the half-open slice `[tid*total/n, (tid+1)*total/n)` assigned
/// to one worker thread.
pub fn thread_slice(
    fb: &mut FunctionBuilder,
    tid: ValueId,
    n: ValueId,
    total: i64,
) -> (ValueId, ValueId) {
    let t = fb.iconst(Ty::I64, total);
    let lo_num = fb.mul(Ty::I64, tid, t);
    let lo = fb.bin(BinOp::SDiv, Ty::I64, lo_num, n);
    let tid1 = fb.add(Ty::I64, tid, fb.iconst(Ty::I64, 1));
    let hi_num = fb.mul(Ty::I64, tid1, t);
    let hi = fb.bin(BinOp::SDiv, Ty::I64, hi_num, n);
    (lo, hi)
}

/// Emits a multiplicative fold over `count` consecutive `i64` cells at
/// `base`: `acc = acc * 31 + cell`, then externalizes the result.
///
/// Used by `fini` phases so that any corruption of the result arrays shows
/// up in the program output (the SDC detector's comparand).
pub fn emit_checksum_i64(fb: &mut FunctionBuilder, base: Operand, count: i64) {
    let acc = fb.alloc(fb.iconst(Ty::I64, 8));
    fb.store(Ty::I64, fb.iconst(Ty::I64, 0), acc);
    fb.counted_loop(fb.iconst(Ty::I64, 0), fb.iconst(Ty::I64, count), |b, i| {
        let cell = b.gep(base, i, 8, 0);
        let v = b.load(Ty::I64, cell);
        let cur = b.load(Ty::I64, acc);
        let m = b.mul(Ty::I64, cur, b.iconst(Ty::I64, 31));
        let nxt = b.add(Ty::I64, m, v);
        b.store(Ty::I64, nxt, acc);
    });
    let v = fb.load(Ty::I64, acc);
    fb.emit_out(Ty::I64, v);
}

/// In-IR xorshift step for kernels that need per-thread pseudo-randomness
/// (canneal, swaptions): `s ^= s << 13; s ^= s >> 7; s ^= s << 17`.
pub fn xorshift(fb: &mut FunctionBuilder, s: ValueId) -> ValueId {
    let a = fb.bin(BinOp::Shl, Ty::I64, s, fb.iconst(Ty::I64, 13));
    let s1 = fb.bin(BinOp::Xor, Ty::I64, s, a);
    let b = fb.bin(BinOp::LShr, Ty::I64, s1, fb.iconst(Ty::I64, 7));
    let s2 = fb.bin(BinOp::Xor, Ty::I64, s1, b);
    let c = fb.bin(BinOp::Shl, Ty::I64, s2, fb.iconst(Ty::I64, 17));
    fb.bin(BinOp::Xor, Ty::I64, s2, c)
}

/// Fixed-point conversion of an `f64` value: `(v * 1000) as i64`.
///
/// Output values are emitted in fixed point so floating-point results can
/// be compared exactly across runs.
pub fn fixpoint(fb: &mut FunctionBuilder, v: ValueId) -> ValueId {
    let scaled = fb.bin(BinOp::FMul, Ty::F64, v, fb.fconst(1000.0));
    fb.cast(haft_ir::inst::CastKind::FpToSi, Ty::I64, scaled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use haft::Experiment;
    use haft_ir::module::Module;
    use haft_ir::verify::verify_module;
    use haft_vm::{RunSpec, VmConfig};

    fn fini_spec() -> RunSpec<'static> {
        RunSpec { fini: Some("fini"), ..Default::default() }
    }

    #[test]
    fn thread_slice_partitions_exactly() {
        // fini-style harness: emit slices for tid 0..3 of 10 elements.
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
        fb.set_non_local();
        let tid = fb.param(0);
        let n = fb.param(1);
        let (lo, hi) = thread_slice(&mut fb, tid, n, 10);
        fb.emit_out(Ty::I64, lo);
        fb.emit_out(Ty::I64, hi);
        fb.ret(None);
        m.push_func(fb.finish());
        verify_module(&m).unwrap();
        let r = Experiment::new(&m)
            .vm(VmConfig { n_threads: 3, ..Default::default() })
            .spec(RunSpec { worker: Some("worker"), ..Default::default() })
            .run()
            .expect_completed("thread_slice");
        assert_eq!(r.output, vec![0, 3, 3, 6, 6, 10]);
    }

    #[test]
    fn checksum_differs_when_data_differs() {
        let run_with = |val: i64| {
            let mut m = Module::new("t");
            m.add_global("a", 4 * 8);
            let g = Operand::GlobalAddr(haft_ir::module::GlobalId(0));
            let mut fb = FunctionBuilder::new("fini", &[], None);
            fb.set_non_local();
            fb.store(Ty::I64, fb.iconst(Ty::I64, val), g);
            emit_checksum_i64(&mut fb, g, 4);
            fb.ret(None);
            m.push_func(fb.finish());
            Experiment::new(&m).spec(fini_spec()).run().run.output
        };
        assert_ne!(run_with(1), run_with(2));
        assert_eq!(run_with(5), run_with(5));
    }

    #[test]
    fn xorshift_matches_host_implementation() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("fini", &[], None);
        fb.set_non_local();
        let s = fb.mov(Ty::I64, fb.iconst(Ty::I64, 0x1234_5678));
        let s1 = xorshift(&mut fb, s);
        fb.emit_out(Ty::I64, s1);
        fb.ret(None);
        m.push_func(fb.finish());
        let r = Experiment::new(&m).spec(fini_spec()).run().run;
        let mut x = 0x1234_5678u64;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        assert_eq!(r.output, vec![x]);
    }

    #[test]
    fn fixpoint_scales_and_truncates() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("fini", &[], None);
        fb.set_non_local();
        let v = fb.mov(Ty::F64, fb.fconst(1.2345));
        let fx = fixpoint(&mut fb, v);
        fb.emit_out(Ty::I64, fx);
        fb.ret(None);
        m.push_func(fb.finish());
        let r = Experiment::new(&m).spec(fini_spec()).run().run;
        assert_eq!(r.output, vec![1234]);
    }
}
