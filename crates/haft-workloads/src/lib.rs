//! Benchmark kernels equivalent to the paper's Phoenix 2.0 and PARSEC 3.0
//! selections.
//!
//! The paper evaluates HAFT on 7 Phoenix and 8 PARSEC applications (plus
//! the "no-sharing" rewrites `kmeans-ns`/`wordcount-ns` and the
//! `vips-nc` pass variant). Real Phoenix/PARSEC are hundreds of thousands
//! of lines of C/C++; what the *evaluation* needs from them is a spread of
//! behaviours along three axes, and each kernel here is shaped to its
//! original's published profile:
//!
//! * **instruction-level parallelism** — the paper's overhead story.
//!   `matrixmul` is a serial floating-point reduction with strided misses
//!   (native IPC ≈ 0.2 → HAFT ≈ 1.04×); `vips`/`x264` are wide
//!   independent integer pipelines (native IPC ≈ 2.6 → HAFT ≈ 3-4×).
//! * **sharing** — `kmeans` (true sharing of centroid accumulators) and
//!   `wordcount` (false sharing of packed counters) abort mostly on
//!   conflicts; their `-ns` variants pad/privatize state as the authors'
//!   47- and 5-line rewrites did.
//! * **transaction footprint** — `swaptions`/`ferret`/`matrixmul` carry
//!   working sets that overflow the L1-bounded write/read sets
//!   (capacity aborts), `dedup` spends time in unprotected "libc"
//!   (low coverage), and `vips` makes many tiny local calls (the
//!   local-call-optimization anomaly).
//!
//! All shared updates are commutative (atomic adds, claim-by-value), so
//! program output is independent of thread interleaving — the property
//! fault-injection classification relies on (the paper dropped
//! `fluidanimate` for violating it).

pub mod data;
pub mod helpers;
pub mod parsec;
pub mod phoenix;
pub mod spec;

pub use spec::{
    all_workloads, workload_by_name, Scale, Workload, PARSEC_NAMES, PHOENIX_BASE_NAMES,
    PHOENIX_NAMES, WORKLOAD_NAMES,
};
