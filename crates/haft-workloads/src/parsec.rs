//! PARSEC 3.0 kernel equivalents: blackscholes, canneal, dedup, ferret,
//! streamcluster, swaptions, vips, x264.

use haft_ir::builder::FunctionBuilder;
use haft_ir::inst::{BinOp, CastKind, CmpOp, Operand, RmwOp, UnOp};
use haft_ir::module::Module;
use haft_ir::types::Ty;

use crate::data;
use crate::helpers::{emit_checksum_i64, thread_slice, xorshift};
use crate::spec::{Scale, Workload, MAX_THREADS};

/// `blackscholes`: option pricing with long-latency math chains.
///
/// Paper profile: HAFT ≈ 1.30× — the dependent `ln`/`exp`/`sqrt` chain
/// stalls the native pipeline, leaving issue slots for the shadow flow.
pub fn blackscholes(scale: Scale) -> Workload {
    let n = scale.pick(600, 12_000);
    let mut m = Module::new("blackscholes");
    let spot = m.add_global_init("spot", data::random_f64s(20, n as usize, 10.0, 100.0));
    let strike = m.add_global_init("strike", data::random_f64s(21, n as usize, 10.0, 100.0));
    let time = m.add_global_init("time", data::random_f64s(22, n as usize, 0.1, 2.0));
    let partial = m.add_global("partial", (MAX_THREADS * 64) as u64);

    let mut w = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
    w.set_non_local();
    let tid = w.param(0);
    let nt = w.param(1);
    let (lo, hi) = thread_slice(&mut w, tid, nt, n);
    let cell_off = w.mul(Ty::I64, tid, w.iconst(Ty::I64, 64));
    let cell = w.add(Ty::I64, Operand::GlobalAddr(partial), cell_off);
    let rate = 0.05f64;
    let vol = 0.2f64;
    w.counted_loop(lo, hi, |b, i| {
        let __h0 = b.gep(Operand::GlobalAddr(spot), i, 8, 0);
        let s = b.load(Ty::F64, __h0);
        let __h1 = b.gep(Operand::GlobalAddr(strike), i, 8, 0);
        let k = b.load(Ty::F64, __h1);
        let __h2 = b.gep(Operand::GlobalAddr(time), i, 8, 0);
        let t = b.load(Ty::F64, __h2);
        // d1 = (ln(S/K) + (r + v^2/2) t) / (v sqrt(t)).
        let ratio = b.bin(BinOp::FDiv, Ty::F64, s, k);
        let lnr = b.un(UnOp::FLn, Ty::F64, ratio);
        let drift = b.bin(BinOp::FMul, Ty::F64, b.fconst(rate + vol * vol / 2.0), t);
        let num = b.bin(BinOp::FAdd, Ty::F64, lnr, drift);
        let sqt = b.un(UnOp::FSqrt, Ty::F64, t);
        let den = b.bin(BinOp::FMul, Ty::F64, b.fconst(vol), sqt);
        let d1 = b.bin(BinOp::FDiv, Ty::F64, num, den);
        let d2 = b.bin(BinOp::FSub, Ty::F64, d1, den);
        // Logistic approximation of the normal CDF.
        let cnd = |b: &mut FunctionBuilder, x: haft_ir::function::ValueId| {
            let scaled = b.bin(BinOp::FMul, Ty::F64, x, b.fconst(-1.702));
            let e = b.un(UnOp::FExp, Ty::F64, scaled);
            let denom = b.bin(BinOp::FAdd, Ty::F64, e, b.fconst(1.0));
            b.bin(BinOp::FDiv, Ty::F64, b.fconst(1.0), denom)
        };
        let n1 = cnd(b, d1);
        let n2 = cnd(b, d2);
        let rt = b.bin(BinOp::FMul, Ty::F64, b.fconst(-rate), t);
        let disc = b.un(UnOp::FExp, Ty::F64, rt);
        let leg1 = b.bin(BinOp::FMul, Ty::F64, s, n1);
        let kd = b.bin(BinOp::FMul, Ty::F64, k, disc);
        let leg2 = b.bin(BinOp::FMul, Ty::F64, kd, n2);
        let price = b.bin(BinOp::FSub, Ty::F64, leg1, leg2);
        let scaled = b.bin(BinOp::FMul, Ty::F64, price, b.fconst(1000.0));
        let fx = b.cast(CastKind::FpToSi, Ty::I64, scaled);
        let cur = b.load(Ty::I64, cell);
        let nxt = b.add(Ty::I64, cur, fx);
        b.store(Ty::I64, nxt, cell);
    });
    w.ret(None);
    m.push_func(w.finish());

    let mut f = FunctionBuilder::new("fini", &[], None);
    f.set_non_local();
    emit_checksum_i64(&mut f, Operand::GlobalAddr(partial), MAX_THREADS * 8);
    f.ret(None);
    m.push_func(f.finish());
    Workload::new("blackscholes", m, None, Some("worker"), Some("fini"))
}

/// `canneal`: annealing-style swaps over a partitioned grid with
/// pointer-chasing cost evaluation.
///
/// Paper profile: HAFT ≈ 1.36× (dependent loads leave ILP headroom),
/// abort rate 0.28 %. Threads own disjoint stripes so the output is
/// schedule-independent.
pub fn canneal(scale: Scale) -> Workload {
    let cells: i64 = 1 << 10;
    let iters = scale.pick(800, 8_000);
    let mut m = Module::new("canneal");
    let grid = m.add_global_init("grid", data::random_i64s(30, cells as usize, cells as u64));
    let accepted = m.add_global("accepted", (MAX_THREADS * 64) as u64);

    let mut w = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
    w.set_non_local();
    let tid = w.param(0);
    let nt = w.param(1);
    // Stripe [clo, chi) of the grid; iterations proportional to stripe.
    let (clo, chi) = thread_slice(&mut w, tid, nt, cells);
    let stripe = w.sub(Ty::I64, chi, clo);
    let (ilo, ihi) = thread_slice(&mut w, tid, nt, iters);
    let my_iters = w.sub(Ty::I64, ihi, ilo);
    let seed0 = w.add(Ty::I64, tid, w.iconst(Ty::I64, 0x9E37_79B9));
    let acc_cell_off = w.mul(Ty::I64, tid, w.iconst(Ty::I64, 64));
    let acc_cell = w.add(Ty::I64, Operand::GlobalAddr(accepted), acc_cell_off);
    let seed_cell = w.alloc(w.iconst(Ty::I64, 8));
    w.store(Ty::I64, seed0, seed_cell);
    w.counted_loop(w.iconst(Ty::I64, 0), my_iters, |b, _| {
        let s = b.load(Ty::I64, seed_cell);
        let s1 = xorshift(b, s);
        b.store(Ty::I64, s1, seed_cell);
        // Two positions inside the stripe.
        let r1 = b.bin(BinOp::URem, Ty::I64, s1, stripe);
        let p1 = b.add(Ty::I64, clo, r1);
        let shifted = b.bin(BinOp::LShr, Ty::I64, s1, b.iconst(Ty::I64, 17));
        let r2 = b.bin(BinOp::URem, Ty::I64, shifted, stripe);
        let p2 = b.add(Ty::I64, clo, r2);
        // Pointer chase: value at p1 names another cell (within the
        // thread's own stripe, for schedule independence) whose value is
        // the "routing cost" (dependent load chain).
        let __h3 = b.gep(Operand::GlobalAddr(grid), p1, 8, 0);
        let v1 = b.load(Ty::I64, __h3);
        let v1r = b.bin(BinOp::URem, Ty::I64, v1, stripe);
        let v1m = b.add(Ty::I64, clo, v1r);
        let __h4 = b.gep(Operand::GlobalAddr(grid), v1m, 8, 0);
        let c1 = b.load(Ty::I64, __h4);
        let __h5 = b.gep(Operand::GlobalAddr(grid), p2, 8, 0);
        let v2 = b.load(Ty::I64, __h5);
        let v2r = b.bin(BinOp::URem, Ty::I64, v2, stripe);
        let v2m = b.add(Ty::I64, clo, v2r);
        let __h6 = b.gep(Operand::GlobalAddr(grid), v2m, 8, 0);
        let c2 = b.load(Ty::I64, __h6);
        // Swap if it lowers the pseudo-cost.
        let better = b.cmp(CmpOp::SLt, Ty::I64, c2, c1);
        b.if_then(better, |b2| {
            let __h0 = b2.gep(Operand::GlobalAddr(grid), p1, 8, 0);
            b2.store(Ty::I64, v2, __h0);
            let __h1 = b2.gep(Operand::GlobalAddr(grid), p2, 8, 0);
            b2.store(Ty::I64, v1, __h1);
            let cur = b2.load(Ty::I64, acc_cell);
            let nxt = b2.add(Ty::I64, cur, b2.iconst(Ty::I64, 1));
            b2.store(Ty::I64, nxt, acc_cell);
        });
    });
    w.ret(None);
    m.push_func(w.finish());

    let mut f = FunctionBuilder::new("fini", &[], None);
    f.set_non_local();
    emit_checksum_i64(&mut f, Operand::GlobalAddr(accepted), MAX_THREADS * 8);
    f.ret(None);
    m.push_func(f.finish());
    Workload::new("canneal", m, None, Some("worker"), Some("fini"))
}

/// `dedup`: chunking + rolling hash + claim-by-value dedup table, with an
/// unprotected "compression library" call per unique chunk.
///
/// Paper profile: the low-coverage case (75.1 % — time in unhardened
/// libc); HAFT ≈ 1.13×.
pub fn dedup(scale: Scale) -> Workload {
    let n = scale.pick(8_192, 65_536);
    const CHUNK: i64 = 64;
    const TABLE: i64 = 1 << 10;
    let mut m = Module::new("dedup");
    // Data with repeated blocks so duplicates exist.
    let mut input = data::random_bytes(40, (n / 2) as usize);
    let copy = input.clone();
    input.extend_from_slice(&copy);
    let input = m.add_global_init("input", input);
    let table = m.add_global("table", (TABLE * 8) as u64);
    let stats = m.add_global("stats", 3 * 8);
    let scratch = m.add_global("scratch", (MAX_THREADS * CHUNK) as u64);

    // Unprotected "compression" routine (stands in for libc/zlib): copies
    // and folds the chunk without HAFT instrumentation.
    let mut ext = FunctionBuilder::new("compress_ext", &[Ty::Ptr, Ty::Ptr], Some(Ty::I64));
    ext.set_external();
    let src = ext.param(0);
    let dst = ext.param(1);
    let acc = ext.alloc(ext.iconst(Ty::I64, 8));
    ext.store(Ty::I64, ext.iconst(Ty::I64, 0), acc);
    ext.counted_loop(ext.iconst(Ty::I64, 0), ext.iconst(Ty::I64, CHUNK), |b, i| {
        let __h7 = b.gep(src, i, 1, 0);
        let c = b.load(Ty::I8, __h7);
        let x = b.cast(CastKind::ZExt, Ty::I64, c);
        let rotated = b.bin(BinOp::Xor, Ty::I64, x, i);
        let t = b.cast(CastKind::Trunc, Ty::I8, rotated);
        let __h2 = b.gep(dst, i, 1, 0);
        b.store(Ty::I8, t, __h2);
        let cur = b.load(Ty::I64, acc);
        let nxt = b.add(Ty::I64, cur, rotated);
        b.store(Ty::I64, nxt, acc);
    });
    let folded = ext.load(Ty::I64, acc);
    ext.ret(Some(folded.into()));
    let ext_id = m.push_func(ext.finish());

    let chunks = n / CHUNK;
    let mut w = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
    w.set_non_local();
    let tid = w.param(0);
    let nt = w.param(1);
    let (lo, hi) = thread_slice(&mut w, tid, nt, chunks);
    let scratch_off = w.mul(Ty::I64, tid, w.iconst(Ty::I64, CHUNK));
    let my_scratch = w.add(Ty::I64, Operand::GlobalAddr(scratch), scratch_off);
    let hcell = w.alloc(w.iconst(Ty::I64, 8));
    let done = w.alloc(w.iconst(Ty::I64, 8));
    let local_stats = w.alloc(w.iconst(Ty::I64, 24));
    w.counted_loop(lo, hi, |b, ci| {
        let base = b.mul(Ty::I64, ci, b.iconst(Ty::I64, CHUNK));
        // Rolling hash over the chunk (serial chain).
        b.store(Ty::I64, b.iconst(Ty::I64, 1469598103), hcell);
        b.counted_loop(b.iconst(Ty::I64, 0), b.iconst(Ty::I64, CHUNK), |b2, j| {
            let pos = b2.add(Ty::I64, base, j);
            let __p = b2.gep(Operand::GlobalAddr(input), pos, 1, 0);
            let c = b2.load(Ty::I8, __p);
            let x = b2.cast(CastKind::ZExt, Ty::I64, c);
            let h = b2.load(Ty::I64, hcell);
            let hx = b2.bin(BinOp::Xor, Ty::I64, h, x);
            let hm = b2.mul(Ty::I64, hx, b2.iconst(Ty::I64, 1099511628211));
            b2.store(Ty::I64, hm, hcell);
        });
        let h = b.load(Ty::I64, hcell);
        // Never-zero marker hash.
        let hz = b.bin(BinOp::Or, Ty::I64, h, b.iconst(Ty::I64, 1));
        // Claim-by-value with deterministic linear probing: every
        // distinct hash is claimed exactly once, by whichever thread gets
        // there first, so the global statistics are schedule-independent.
        b.store(Ty::I64, b.iconst(Ty::I64, 0), done);
        b.counted_loop(b.iconst(Ty::I64, 0), b.iconst(Ty::I64, 16), |b2, k| {
            let d = b2.load(Ty::I64, done);
            let open = b2.cmp(CmpOp::Eq, Ty::I64, d, b2.iconst(Ty::I64, 0));
            b2.if_then(open, |b3| {
                let hk = b3.add(Ty::I64, hz, k);
                let slot = b3.bin(BinOp::URem, Ty::I64, hk, b3.iconst(Ty::I64, TABLE));
                let cell = b3.gep(Operand::GlobalAddr(table), slot, 8, 0);
                let old = b3.cmpxchg(Ty::I64, cell, b3.iconst(Ty::I64, 0), hz);
                let was_empty = b3.cmp(CmpOp::Eq, Ty::I64, old, b3.iconst(Ty::I64, 0));
                b3.if_then(was_empty, |b4| {
                    let lu = b4.load(Ty::I64, local_stats);
                    let lu1 = b4.add(Ty::I64, lu, b4.iconst(Ty::I64, 1));
                    b4.store(Ty::I64, lu1, local_stats);
                    // Compress unique chunks through the unprotected
                    // library; fold the result into a commutative sum.
                    let src = b4.gep(Operand::GlobalAddr(input), base, 1, 0);
                    let folded =
                        b4.call(ext_id, &[src.into(), my_scratch.into()], Some(Ty::I64)).unwrap();
                    let fold_cell = b4.gep(local_stats, b4.iconst(Ty::I64, 1), 8, 0);
                    let lf = b4.load(Ty::I64, fold_cell);
                    let lf1 = b4.add(Ty::I64, lf, folded);
                    b4.store(Ty::I64, lf1, fold_cell);
                    b4.store(Ty::I64, b4.iconst(Ty::I64, 1), done);
                });
                let is_dup = b3.cmp(CmpOp::Eq, Ty::I64, old, hz);
                b3.if_then(is_dup, |b4| {
                    let dup_cell = b4.gep(local_stats, b4.iconst(Ty::I64, 2), 8, 0);
                    let ld = b4.load(Ty::I64, dup_cell);
                    let ld1 = b4.add(Ty::I64, ld, b4.iconst(Ty::I64, 1));
                    b4.store(Ty::I64, ld1, dup_cell);
                    b4.store(Ty::I64, b4.iconst(Ty::I64, 1), done);
                });
            });
        });
    });
    // Flush the thread's statistics once, at the end.
    w.counted_loop(w.iconst(Ty::I64, 0), w.iconst(Ty::I64, 3), |b3, c| {
        let lc = b3.gep(local_stats, c, 8, 0);
        let v = b3.load(Ty::I64, lc);
        let sc = b3.gep(Operand::GlobalAddr(stats), c, 8, 0);
        b3.rmw(RmwOp::Add, Ty::I64, sc, v);
    });
    w.ret(None);
    m.push_func(w.finish());

    let mut f = FunctionBuilder::new("fini", &[], None);
    f.set_non_local();
    emit_checksum_i64(&mut f, Operand::GlobalAddr(stats), 3);
    f.ret(None);
    m.push_func(f.finish());
    Workload::new("dedup", m, None, Some("worker"), Some("fini"))
}

/// `ferret`: nearest-neighbour scans over a vector database with a
/// cache-thrashing candidate buffer.
///
/// Paper profile: 80 % capacity aborts, 12.6× abort increase under
/// hyper-threading; HAFT ≈ 1.99×.
pub fn ferret(scale: Scale) -> Workload {
    const DIM: i64 = 8;
    const DB: i64 = 192;
    let queries = scale.pick(6, 48);
    let mut m = Module::new("ferret");
    let db = m.add_global_init("db", data::random_i64s(50, (DB * DIM) as usize, 256));
    let qs = m.add_global_init("qs", data::random_i64s(51, (queries * DIM) as usize, 256));
    let result = m.add_global("result", (queries * 8) as u64);
    // Candidate scratch: slots spaced 4 KB apart map to the same L1 set,
    // so the write set overflows associativity (capacity aborts).
    let scratch = m.add_global("scratch", (MAX_THREADS as u64) * 8 * 4096);

    let mut w = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
    w.set_non_local();
    let tid = w.param(0);
    let nt = w.param(1);
    let (lo, hi) = thread_slice(&mut w, tid, nt, queries);
    let sc_off = w.mul(Ty::I64, tid, w.iconst(Ty::I64, 8 * 4096));
    let sc = w.add(Ty::I64, Operand::GlobalAddr(scratch), sc_off);
    let bestd = w.alloc(w.iconst(Ty::I64, 16));
    let besti = w.gep(bestd, w.iconst(Ty::I64, 1), 8, 0);
    w.counted_loop(lo, hi, |b, q| {
        let qbase = b.gep(Operand::GlobalAddr(qs), q, (DIM * 8) as u32, 0);
        b.store(Ty::I64, b.iconst(Ty::I64, i64::MAX), bestd);
        b.store(Ty::I64, b.iconst(Ty::I64, -1), besti);
        b.counted_loop(b.iconst(Ty::I64, 0), b.iconst(Ty::I64, DB), |b2, v| {
            let vbase = b2.gep(Operand::GlobalAddr(db), v, (DIM * 8) as u32, 0);
            // Unrolled L2 distance, two independent accumulator chains.
            let mut evens = b2.mov(Ty::I64, b2.iconst(Ty::I64, 0));
            let mut odds = b2.mov(Ty::I64, b2.iconst(Ty::I64, 0));
            for d in 0..DIM {
                let __h9 = b2.gep(qbase, b2.iconst(Ty::I64, d), 8, 0);
                let qv = b2.load(Ty::I64, __h9);
                let __h10 = b2.gep(vbase, b2.iconst(Ty::I64, d), 8, 0);
                let dv = b2.load(Ty::I64, __h10);
                let diff = b2.sub(Ty::I64, qv, dv);
                let sq = b2.mul(Ty::I64, diff, diff);
                if d % 2 == 0 {
                    evens = b2.add(Ty::I64, evens, sq);
                } else {
                    odds = b2.add(Ty::I64, odds, sq);
                }
            }
            let dist = b2.add(Ty::I64, evens, odds);
            // Thrash the scratch slots (same-set lines).
            let slot = b2.bin(BinOp::URem, Ty::I64, v, b2.iconst(Ty::I64, 8));
            let sc_cell = b2.gep(sc, slot, 4096, 0);
            b2.store(Ty::I64, dist, sc_cell);
            let cur = b2.load(Ty::I64, bestd);
            let better = b2.cmp(CmpOp::SLt, Ty::I64, dist, cur);
            b2.if_then(better, |b3| {
                b3.store(Ty::I64, dist, bestd);
                b3.store(Ty::I64, v, besti);
            });
        });
        let bi = b.load(Ty::I64, besti);
        let __h3 = b.gep(Operand::GlobalAddr(result), q, 8, 0);
        b.store(Ty::I64, bi, __h3);
    });
    w.ret(None);
    m.push_func(w.finish());

    let mut f = FunctionBuilder::new("fini", &[], None);
    f.set_non_local();
    emit_checksum_i64(&mut f, Operand::GlobalAddr(result), queries);
    f.ret(None);
    m.push_func(f.finish());
    Workload::new("ferret", m, None, Some("worker"), Some("fini"))
}

/// `streamcluster`: streaming assignment against shared centers.
///
/// Paper profile: the conflict extreme — 23.4 % abort rate, 99.9 %
/// conflicts (every thread updates the same assignment counters packed in
/// one cache line).
pub fn streamcluster(scale: Scale) -> Workload {
    const DIM: i64 = 4;
    const CENTERS: i64 = 8;
    let n = scale.pick(1_500, 12_000);
    let mut m = Module::new("streamcluster");
    let pts = m.add_global_init("pts", data::random_i64s(60, (n * DIM) as usize, 1000));
    let centers =
        m.add_global_init("centers", data::random_i64s(61, (CENTERS * DIM) as usize, 1000));
    // All assignment counters share one line: intense conflict traffic.
    let counts = m.add_global("counts", (CENTERS * 8) as u64);

    let mut w = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
    w.set_non_local();
    let tid = w.param(0);
    let nt = w.param(1);
    let (lo, hi) = thread_slice(&mut w, tid, nt, n);
    let bestd = w.alloc(w.iconst(Ty::I64, 16));
    let bestk = w.gep(bestd, w.iconst(Ty::I64, 1), 8, 0);
    let local = w.alloc(w.iconst(Ty::I64, CENTERS * 8));
    w.counted_loop(lo, hi, |b, i| {
        let pbase = b.gep(Operand::GlobalAddr(pts), i, (DIM * 8) as u32, 0);
        b.store(Ty::I64, b.iconst(Ty::I64, i64::MAX), bestd);
        b.store(Ty::I64, b.iconst(Ty::I64, 0), bestk);
        b.counted_loop(b.iconst(Ty::I64, 0), b.iconst(Ty::I64, CENTERS), |b2, k| {
            let cbase = b2.gep(Operand::GlobalAddr(centers), k, (DIM * 8) as u32, 0);
            let mut dist = b2.mov(Ty::I64, b2.iconst(Ty::I64, 0));
            for d in 0..DIM {
                let __h11 = b2.gep(pbase, b2.iconst(Ty::I64, d), 8, 0);
                let pv = b2.load(Ty::I64, __h11);
                let __h12 = b2.gep(cbase, b2.iconst(Ty::I64, d), 8, 0);
                let cv = b2.load(Ty::I64, __h12);
                let diff = b2.sub(Ty::I64, pv, cv);
                let sq = b2.mul(Ty::I64, diff, diff);
                dist = b2.add(Ty::I64, dist, sq);
            }
            let cur = b2.load(Ty::I64, bestd);
            let better = b2.cmp(CmpOp::SLt, Ty::I64, dist, cur);
            let nd = b2.select(Ty::I64, better, dist, cur);
            b2.store(Ty::I64, nd, bestd);
            let ck = b2.load(Ty::I64, bestk);
            let nk = b2.select(Ty::I64, better, k, ck);
            b2.store(Ty::I64, nk, bestk);
        });
        let k = b.load(Ty::I64, bestk);
        let lc = b.gep(local, k, 8, 0);
        let cur = b.load(Ty::I64, lc);
        let nxt = b.add(Ty::I64, cur, b.iconst(Ty::I64, 1));
        b.store(Ty::I64, nxt, lc);
        // Flush the batch into the shared (single-line) counter block
        // every 16 points — streamcluster's pathological sharing.
        let batch = b.bin(BinOp::And, Ty::I64, i, b.iconst(Ty::I64, 15));
        let flush = b.cmp(CmpOp::Eq, Ty::I64, batch, b.iconst(Ty::I64, 15));
        b.if_then(flush, |b2| {
            b2.counted_loop(b2.iconst(Ty::I64, 0), b2.iconst(Ty::I64, CENTERS), |b3, c| {
                let lcc = b3.gep(local, c, 8, 0);
                let v = b3.load(Ty::I64, lcc);
                let sc = b3.gep(Operand::GlobalAddr(counts), c, 8, 0);
                b3.rmw(RmwOp::Add, Ty::I64, sc, v);
                b3.store(Ty::I64, b3.iconst(Ty::I64, 0), lcc);
            });
        });
    });
    // Remainder flush.
    w.counted_loop(w.iconst(Ty::I64, 0), w.iconst(Ty::I64, CENTERS), |b3, c| {
        let lcc = b3.gep(local, c, 8, 0);
        let v = b3.load(Ty::I64, lcc);
        let sc = b3.gep(Operand::GlobalAddr(counts), c, 8, 0);
        b3.rmw(RmwOp::Add, Ty::I64, sc, v);
    });
    w.ret(None);
    m.push_func(w.finish());

    let mut f = FunctionBuilder::new("fini", &[], None);
    f.set_non_local();
    emit_checksum_i64(&mut f, Operand::GlobalAddr(counts), CENTERS);
    f.ret(None);
    m.push_func(f.finish());
    Workload::new("streamcluster", m, None, Some("worker"), Some("fini"))
}

/// `swaptions`: Monte-Carlo rate paths into same-set scratch lines.
///
/// Paper profile: 90.9 % capacity aborts (the per-path scratch overflows
/// the L1 write-set budget); HAFT ≈ 2.64×.
pub fn swaptions(scale: Scale) -> Workload {
    const STEPS: i64 = 32;
    let sims = scale.pick(300, 2_400);
    let mut m = Module::new("swaptions");
    // Path scratch: STEPS slots spaced 4 KB apart per thread — same-set
    // write lines, exceeding 8-way associativity.
    let scratch = m.add_global("scratch", (MAX_THREADS as u64) * STEPS as u64 * 1024);
    let prices = m.add_global("prices", (MAX_THREADS * 64) as u64);

    let mut w = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
    w.set_non_local();
    let tid = w.param(0);
    let nt = w.param(1);
    let (lo, hi) = thread_slice(&mut w, tid, nt, sims);
    let sc_off = w.mul(Ty::I64, tid, w.iconst(Ty::I64, STEPS * 1024));
    let sc = w.add(Ty::I64, Operand::GlobalAddr(scratch), sc_off);
    let pcell_off = w.mul(Ty::I64, tid, w.iconst(Ty::I64, 64));
    let pcell = w.add(Ty::I64, Operand::GlobalAddr(prices), pcell_off);
    let seed_cell = w.alloc(w.iconst(Ty::I64, 8));
    let s0 = w.add(Ty::I64, tid, w.iconst(Ty::I64, 0xC0FFEE));
    w.store(Ty::I64, s0, seed_cell);
    let rate = w.alloc(w.iconst(Ty::I64, 8));
    let sum = w.alloc(w.iconst(Ty::I64, 8));
    w.counted_loop(lo, hi, |b, _sim| {
        // Simulate one path: write each step to its same-set slot.
        b.store(Ty::F64, b.fconst(0.05), rate);
        b.counted_loop(b.iconst(Ty::I64, 0), b.iconst(Ty::I64, STEPS), |b2, st| {
            let s = b2.load(Ty::I64, seed_cell);
            let s1 = xorshift(b2, s);
            b2.store(Ty::I64, s1, seed_cell);
            let noise = b2.bin(BinOp::AShr, Ty::I64, s1, b2.iconst(Ty::I64, 40));
            let nf = b2.cast(CastKind::SiToFp, Ty::F64, noise);
            let shock = b2.bin(BinOp::FMul, Ty::F64, nf, b2.fconst(1e-8));
            let r = b2.load(Ty::F64, rate);
            let drift = b2.bin(BinOp::FMul, Ty::F64, r, b2.fconst(1.001));
            let nr = b2.bin(BinOp::FAdd, Ty::F64, drift, shock);
            b2.store(Ty::F64, nr, rate);
            let slot = b2.gep(sc, st, 1024, 0);
            b2.store(Ty::F64, nr, slot);
        });
        // Payoff: average of the path (reads the scratch back).
        b.store(Ty::F64, b.fconst(0.0), sum);
        b.counted_loop(b.iconst(Ty::I64, 0), b.iconst(Ty::I64, STEPS), |b2, st| {
            let slot = b2.gep(sc, st, 1024, 0);
            let v = b2.load(Ty::F64, slot);
            let cur = b2.load(Ty::F64, sum);
            let nxt = b2.bin(BinOp::FAdd, Ty::F64, cur, v);
            b2.store(Ty::F64, nxt, sum);
        });
        let __h13 = b.load(Ty::F64, sum);
        let avg = b.bin(BinOp::FDiv, Ty::F64, __h13, b.fconst(STEPS as f64));
        let scaled = b.bin(BinOp::FMul, Ty::F64, avg, b.fconst(1_000_000.0));
        let fx = b.cast(CastKind::FpToSi, Ty::I64, scaled);
        let cur = b.load(Ty::I64, pcell);
        let nxt = b.add(Ty::I64, cur, fx);
        b.store(Ty::I64, nxt, pcell);
    });
    w.ret(None);
    m.push_func(w.finish());

    let mut f = FunctionBuilder::new("fini", &[], None);
    f.set_non_local();
    emit_checksum_i64(&mut f, Operand::GlobalAddr(prices), MAX_THREADS * 8);
    f.ret(None);
    m.push_func(f.finish());
    Workload::new("swaptions", m, None, Some("worker"), Some("fini"))
}

/// `vips`: image filter with one tiny local call per pixel and a wide
/// (high-ILP) body.
///
/// Paper profile: the worst case — native IPC 2.6 leaves no slack for the
/// shadow flow (4.21×), and the per-call counter/split bookkeeping of the
/// local-call optimization is a net loss (`vips-nc` drops to 2.68×).
pub fn vips(scale: Scale) -> Workload {
    let w_px = scale.pick(52, 100);
    let h_px = scale.pick(40, 96);
    let mut m = Module::new("vips");
    let npix = w_px * h_px;
    let img = m.add_global_init("img", data::random_i64s(70, npix as usize, 256));
    let out = m.add_global("out", (npix * 8) as u64);
    // Per-thread tile buffer whose slots alias one L1 set (4 KB stride):
    // the image library's scatter-gather working buffer. Under the
    // local-call optimization a transaction spans many pixels and
    // accumulates most of these same-set lines in its write set — the
    // capacity aborts behind vips's worst-in-suite overhead. Without the
    // optimization (`vips-nc`) each tiny transaction touches only a
    // couple of slots and commits.
    let tiles = m.add_global("tiles", (MAX_THREADS as u64) * 12 * 4096);

    // The tiny per-pixel kernel: wide independent integer math.
    let mut k = FunctionBuilder::new("vips_kernel", &[Ty::I64], Some(Ty::I64));
    let x = k.param(0);
    let mut terms = Vec::new();
    for c in 1..25i64 {
        let t = k.mul(Ty::I64, x, k.iconst(Ty::I64, c));
        let u = k.add(Ty::I64, t, k.iconst(Ty::I64, c * 17));
        let v = k.bin(BinOp::Xor, Ty::I64, u, k.iconst(Ty::I64, c * 255));
        let sh = k.bin(BinOp::Shl, Ty::I64, v, k.iconst(Ty::I64, c & 7));
        terms.push(k.bin(BinOp::Or, Ty::I64, v, sh));
    }
    // Balanced reduction keeps the body wide.
    while terms.len() > 1 {
        let mut next = Vec::new();
        for pair in terms.chunks(2) {
            next.push(if pair.len() == 2 { k.add(Ty::I64, pair[0], pair[1]) } else { pair[0] });
        }
        terms = next;
    }
    k.ret(Some(terms[0].into()));
    let kid = m.push_func(k.finish());

    let mut w = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
    w.set_non_local();
    let tid = w.param(0);
    let nt = w.param(1);
    let tile_off = w.mul(Ty::I64, tid, w.iconst(Ty::I64, 12 * 4096));
    let tile = w.add(Ty::I64, Operand::GlobalAddr(tiles), tile_off);
    // Round-robin row striping, as image libraries hand out scanlines.
    let pre = w.current_block();
    let header = w.new_block();
    let body = w.new_block();
    let exit = w.new_block();
    w.br(header);
    w.switch_to(header);
    let y = w.phi(Ty::I64);
    w.phi_incoming(y, tid, pre);
    let more = w.cmp(CmpOp::SLt, Ty::I64, y, w.iconst(Ty::I64, h_px));
    w.condbr(more, body, exit);
    w.switch_to(body);
    w.counted_loop(w.iconst(Ty::I64, 0), w.iconst(Ty::I64, w_px), |bx, xcol| {
        let rowbase = bx.mul(Ty::I64, y, bx.iconst(Ty::I64, w_px));
        let idx = bx.add(Ty::I64, rowbase, xcol);
        let pix = bx.gep(Operand::GlobalAddr(img), idx, 8, 0);
        let v = bx.load(Ty::I64, pix);
        let r = bx.call(kid, &[v.into()], Some(Ty::I64)).unwrap();
        let dst = bx.gep(Operand::GlobalAddr(out), idx, 8, 0);
        bx.store(Ty::I64, r, dst);
        let slot = bx.bin(BinOp::URem, Ty::I64, xcol, bx.iconst(Ty::I64, 12));
        let tcell = bx.gep(tile, slot, 4096, 0);
        bx.store(Ty::I64, r, tcell);
    });
    let latch = w.current_block();
    let ynext = w.add(Ty::I64, y, nt);
    w.phi_incoming(y, ynext, latch);
    w.br(header);
    w.switch_to(exit);
    w.ret(None);
    m.push_func(w.finish());

    let mut f = FunctionBuilder::new("fini", &[], None);
    f.set_non_local();
    emit_checksum_i64(&mut f, Operand::GlobalAddr(out), npix);
    f.ret(None);
    m.push_func(f.finish());
    Workload::new("vips", m, None, Some("worker"), Some("fini"))
}

/// `x264`: block-based motion search (SAD over a search window).
///
/// Paper profile: wide integer pipelines (overhead 2.86×) with large
/// encoded-output write sets (64 % capacity aborts).
pub fn x264(scale: Scale) -> Workload {
    let dim = scale.pick(32, 64);
    const BLK: i64 = 8;
    const SEARCH: i64 = 4;
    let mut m = Module::new("x264");
    let reference = m.add_global_init("ref", data::random_bytes(80, (dim * dim) as usize));
    // Current frame: the reference shifted, so motion search finds real
    // offsets.
    let mut cur = data::random_bytes(80, (dim * dim) as usize);
    cur.rotate_left(dim as usize * 2 + 3);
    let current = m.add_global_init("cur", cur);
    let blocks = (dim / BLK) * (dim / BLK);
    let mvs = m.add_global("mvs", (blocks * 8) as u64);

    let mut w = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
    w.set_non_local();
    let tid = w.param(0);
    let nt = w.param(1);
    let (lo, hi) = thread_slice(&mut w, tid, nt, blocks);
    let bpr = dim / BLK; // Blocks per row.
    let best = w.alloc(w.iconst(Ty::I64, 16));
    let bestoff = w.gep(best, w.iconst(Ty::I64, 1), 8, 0);
    let sad_cell = w.alloc(w.iconst(Ty::I64, 8));
    w.counted_loop(lo, hi, |b, blk| {
        let brow = b.bin(BinOp::SDiv, Ty::I64, blk, b.iconst(Ty::I64, bpr));
        let bcol = b.bin(BinOp::SRem, Ty::I64, blk, b.iconst(Ty::I64, bpr));
        let y0 = b.mul(Ty::I64, brow, b.iconst(Ty::I64, BLK));
        let x0 = b.mul(Ty::I64, bcol, b.iconst(Ty::I64, BLK));
        b.store(Ty::I64, b.iconst(Ty::I64, i64::MAX), best);
        b.store(Ty::I64, b.iconst(Ty::I64, 0), bestoff);
        // Horizontal search window.
        b.counted_loop(b.iconst(Ty::I64, -SEARCH), b.iconst(Ty::I64, SEARCH + 1), |b2, off| {
            b2.store(Ty::I64, b2.iconst(Ty::I64, 0), sad_cell);
            b2.counted_loop(b2.iconst(Ty::I64, 0), b2.iconst(Ty::I64, BLK), |b3, dy| {
                let y = b3.add(Ty::I64, y0, dy);
                let rowbase = b3.mul(Ty::I64, y, b3.iconst(Ty::I64, dim));
                // Unrolled row SAD: independent |a-b| chains.
                let mut partial = b3.mov(Ty::I64, b3.iconst(Ty::I64, 0));
                for dx in 0..BLK {
                    let x = b3.add(Ty::I64, x0, b3.iconst(Ty::I64, dx));
                    let ci = b3.add(Ty::I64, rowbase, x);
                    let __h15 = b3.gep(Operand::GlobalAddr(current), ci, 1, 0);
                    let cv = b3.load(Ty::I8, __h15);
                    let c64 = b3.cast(CastKind::ZExt, Ty::I64, cv);
                    let rx = b3.add(Ty::I64, x, off);
                    let rxc = b3.bin(BinOp::And, Ty::I64, rx, b3.iconst(Ty::I64, dim - 1));
                    let ri = b3.add(Ty::I64, rowbase, rxc);
                    let __h16 = b3.gep(Operand::GlobalAddr(reference), ri, 1, 0);
                    let rv = b3.load(Ty::I8, __h16);
                    let r64 = b3.cast(CastKind::ZExt, Ty::I64, rv);
                    let diff = b3.sub(Ty::I64, c64, r64);
                    let neg = b3.un(UnOp::Neg, Ty::I64, diff);
                    let pos = b3.cmp(CmpOp::SGe, Ty::I64, diff, b3.iconst(Ty::I64, 0));
                    let abs = b3.select(Ty::I64, pos, diff, neg);
                    partial = b3.add(Ty::I64, partial, abs);
                }
                let cur = b3.load(Ty::I64, sad_cell);
                let nxt = b3.add(Ty::I64, cur, partial);
                b3.store(Ty::I64, nxt, sad_cell);
            });
            let sad = b2.load(Ty::I64, sad_cell);
            let curbest = b2.load(Ty::I64, best);
            let better = b2.cmp(CmpOp::SLt, Ty::I64, sad, curbest);
            b2.if_then(better, |b3| {
                b3.store(Ty::I64, sad, best);
                b3.store(Ty::I64, off, bestoff);
            });
        });
        let mv = b.load(Ty::I64, bestoff);
        let __h5 = b.gep(Operand::GlobalAddr(mvs), blk, 8, 0);
        b.store(Ty::I64, mv, __h5);
    });
    w.ret(None);
    m.push_func(w.finish());

    let mut f = FunctionBuilder::new("fini", &[], None);
    f.set_non_local();
    emit_checksum_i64(&mut f, Operand::GlobalAddr(mvs), blocks);
    f.ret(None);
    m.push_func(f.finish());
    Workload::new("x264", m, None, Some("worker"), Some("fini"))
}
