//! Phoenix 2.0 kernel equivalents: histogram, kmeans(-ns), linearreg,
//! matrixmul, pca, stringmatch, wordcount(-ns).

use haft_ir::builder::FunctionBuilder;
use haft_ir::inst::{BinOp, CastKind, CmpOp, Operand, RmwOp};
use haft_ir::module::Module;
use haft_ir::types::Ty;

use crate::data;
use crate::helpers::{emit_checksum_i64, thread_slice};
use crate::spec::{Scale, Workload, MAX_THREADS};

/// `histogram`: byte-frequency counting into per-thread tables.
///
/// Paper profile: low abort rate (1.1 %), mostly "other" causes; HAFT
/// overhead ≈ 1.55×. Per-thread tables are 2 KB apart, so there is no
/// sharing; the dependent load→index→load→add→store chain leaves some
/// spare issue slots for the shadow flow.
pub fn histogram(scale: Scale) -> Workload {
    let n = scale.pick(16_384, 120_000);
    let mut m = Module::new("histogram");
    let input = m.add_global_init("input", data::random_bytes(1, n as usize));
    let hist = m.add_global("hist", (MAX_THREADS * 256 * 8) as u64);

    let mut w = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
    w.set_non_local();
    let tid = w.param(0);
    let nt = w.param(1);
    let (lo, hi) = thread_slice(&mut w, tid, nt, n);
    let base = w.mul(Ty::I64, tid, w.iconst(Ty::I64, 256 * 8));
    let mybase = w.add(Ty::I64, Operand::GlobalAddr(hist), base);
    w.counted_loop(lo, hi, |b, i| {
        let p = b.gep(Operand::GlobalAddr(input), i, 1, 0);
        let byte = b.load(Ty::I8, p);
        let idx = b.cast(CastKind::ZExt, Ty::I64, byte);
        let cell = b.gep(mybase, idx, 8, 0);
        let cur = b.load(Ty::I64, cell);
        let nxt = b.add(Ty::I64, cur, b.iconst(Ty::I64, 1));
        b.store(Ty::I64, nxt, cell);
    });
    w.ret(None);
    m.push_func(w.finish());

    let mut f = FunctionBuilder::new("fini", &[], None);
    f.set_non_local();
    emit_checksum_i64(&mut f, Operand::GlobalAddr(hist), MAX_THREADS * 256);
    f.ret(None);
    m.push_func(f.finish());
    Workload::new("histogram", m, None, Some("worker"), Some("fini"))
}

/// `kmeans`: one assignment+accumulation pass over 2-D points.
///
/// Paper profile: 99.9 % of aborts are conflicts — every thread updates
/// the shared centroid accumulators. The `ns` variant privatizes the
/// accumulators per thread (the authors' 5-line rewrite).
pub fn kmeans(scale: Scale, ns: bool) -> Workload {
    const K: i64 = 8;
    const D: i64 = 4;
    let n = scale.pick(1_200, 8_000);
    let name = if ns { "kmeans-ns" } else { "kmeans" };
    let mut m = Module::new(name);
    let points = m.add_global_init("points", data::random_f64s(2, (n * D) as usize, 0.0, 10.0));
    let centroids =
        m.add_global_init("centroids", data::random_f64s(3, (K * D) as usize, 0.0, 10.0));
    // Shared: one accumulator block. Private: one per thread.
    let acc_sets: i64 = if ns { MAX_THREADS } else { 1 };
    let sums = m.add_global("sums", (acc_sets * K * (D + 1) * 8) as u64);

    let mut w = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
    w.set_non_local();
    let tid = w.param(0);
    let nt = w.param(1);
    let (lo, hi) = thread_slice(&mut w, tid, nt, n);
    let my_sums = if ns {
        let off = w.mul(Ty::I64, tid, w.iconst(Ty::I64, K * (D + 1) * 8));
        w.add(Ty::I64, Operand::GlobalAddr(sums), off)
    } else {
        w.mov(Ty::Ptr, Operand::GlobalAddr(sums))
    };
    let best = w.alloc(w.iconst(Ty::I64, 16));
    let bd = w.gep(best, w.iconst(Ty::I64, 1), 8, 0);
    let local = w.alloc(w.iconst(Ty::I64, K * (D + 1) * 8));
    w.counted_loop(lo, hi, |b, i| {
        let pbase = b.gep(Operand::GlobalAddr(points), i, (D * 8) as u32, 0);
        // Nearest centroid: distance loop over K, argmin carried in
        // (best_k, best_d) cells.
        b.store(Ty::I64, b.iconst(Ty::I64, 0), best);
        b.store(Ty::F64, b.fconst(f64::MAX), bd);
        b.counted_loop(b.iconst(Ty::I64, 0), b.iconst(Ty::I64, K), |b2, k| {
            let cbase = b2.gep(Operand::GlobalAddr(centroids), k, (D * 8) as u32, 0);
            // Unrolled D=4 squared distance (independent FP chains).
            let mut partial = Vec::new();
            for d in 0..D {
                let __h0 = b2.gep(pbase, b2.iconst(Ty::I64, d), 8, 0);
                let pv = b2.load(Ty::F64, __h0);
                let __h1 = b2.gep(cbase, b2.iconst(Ty::I64, d), 8, 0);
                let cv = b2.load(Ty::F64, __h1);
                let diff = b2.bin(BinOp::FSub, Ty::F64, pv, cv);
                partial.push(b2.bin(BinOp::FMul, Ty::F64, diff, diff));
            }
            let s01 = b2.bin(BinOp::FAdd, Ty::F64, partial[0], partial[1]);
            let s23 = b2.bin(BinOp::FAdd, Ty::F64, partial[2], partial[3]);
            let dist = b2.bin(BinOp::FAdd, Ty::F64, s01, s23);
            let cur_best = b2.load(Ty::F64, bd);
            let better = b2.cmp(CmpOp::FLt, Ty::F64, dist, cur_best);
            let new_d = b2.select(Ty::F64, better, dist, cur_best);
            let cur_k = b2.load(Ty::I64, best);
            let new_k = b2.select(Ty::I64, better, k, cur_k);
            b2.store(Ty::F64, new_d, bd);
            b2.store(Ty::I64, new_k, best);
        });
        // Accumulate the point into the winner's row of the local
        // buffer in fixed point.
        let k = b.load(Ty::I64, best);
        let row = b.gep(local, k, ((D + 1) * 8) as u32, 0);
        for d in 0..D {
            let __h2 = b.gep(pbase, b.iconst(Ty::I64, d), 8, 0);
            let pv = b.load(Ty::F64, __h2);
            let scaled = b.bin(BinOp::FMul, Ty::F64, pv, b.fconst(1000.0));
            let fx = b.cast(CastKind::FpToSi, Ty::I64, scaled);
            let cell = b.gep(row, b.iconst(Ty::I64, d), 8, 0);
            let cur = b.load(Ty::I64, cell);
            let nxt = b.add(Ty::I64, cur, fx);
            b.store(Ty::I64, nxt, cell);
        }
        let cnt = b.gep(row, b.iconst(Ty::I64, D), 8, 0);
        let cur = b.load(Ty::I64, cnt);
        let nxt = b.add(Ty::I64, cur, b.iconst(Ty::I64, 1));
        b.store(Ty::I64, nxt, cnt);
        if !ns {
            // Shared variant: flush the batch to the shared accumulators
            // every 32 points — this is kmeans's true-sharing traffic.
            let batch = b.bin(BinOp::And, Ty::I64, i, b.iconst(Ty::I64, 31));
            let flush = b.cmp(CmpOp::Eq, Ty::I64, batch, b.iconst(Ty::I64, 31));
            b.if_then(flush, |b2| {
                b2.counted_loop(b2.iconst(Ty::I64, 0), b2.iconst(Ty::I64, K * (D + 1)), |b3, c| {
                    let lc = b3.gep(local, c, 8, 0);
                    let v = b3.load(Ty::I64, lc);
                    let sc = b3.gep(my_sums, c, 8, 0);
                    b3.rmw(RmwOp::Add, Ty::I64, sc, v);
                    b3.store(Ty::I64, b3.iconst(Ty::I64, 0), lc);
                });
            });
        }
    });
    // Final flush of the remainder (shared) or the whole buffer (ns).
    w.counted_loop(w.iconst(Ty::I64, 0), w.iconst(Ty::I64, K * (D + 1)), |b3, c| {
        let lc = b3.gep(local, c, 8, 0);
        let v = b3.load(Ty::I64, lc);
        let sc = b3.gep(my_sums, c, 8, 0);
        if ns {
            let cur = b3.load(Ty::I64, sc);
            let nxt = b3.add(Ty::I64, cur, v);
            b3.store(Ty::I64, nxt, sc);
        } else {
            b3.rmw(RmwOp::Add, Ty::I64, sc, v);
        }
    });

    w.ret(None);
    m.push_func(w.finish());

    let mut f = FunctionBuilder::new("fini", &[], None);
    f.set_non_local();
    emit_checksum_i64(&mut f, Operand::GlobalAddr(sums), acc_sets * K * (D + 1));
    f.ret(None);
    m.push_func(f.finish());
    Workload::new(name, m, None, Some("worker"), Some("fini"))
}

/// `linearreg`: least-squares sums carried in registers.
///
/// Paper profile: overhead ≈ 2.16×; 20 % of its native SDCs stem from
/// corrupted `EFLAGS` (wrong branches), and it is the paper's showcase for
/// the fault-propagation check — the accumulators live in registers with
/// the stores hoisted past the loop, exactly Figure 2's pattern.
pub fn linearreg(scale: Scale) -> Workload {
    let n = scale.pick(3_000, 50_000);
    let mut m = Module::new("linearreg");
    let pts = m.add_global_init("pts", data::random_i64s(4, (n * 2) as usize, 1000));
    let partial = m.add_global("partial", (MAX_THREADS * 64) as u64);

    let mut w = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
    w.set_non_local();
    let tid = w.param(0);
    let nt = w.param(1);
    let (lo, hi) = thread_slice(&mut w, tid, nt, n);
    // Register accumulators via loop phis (4 independent chains).
    let pre = w.current_block();
    let header = w.new_block();
    let body = w.new_block();
    let exit = w.new_block();
    w.br(header);
    w.switch_to(header);
    let i = w.phi(Ty::I64);
    let sx = w.phi(Ty::I64);
    let sy = w.phi(Ty::I64);
    let sxx = w.phi(Ty::I64);
    let sxy = w.phi(Ty::I64);
    let zero = w.iconst(Ty::I64, 0);
    w.phi_incoming(i, lo, pre);
    w.phi_incoming(sx, zero, pre);
    w.phi_incoming(sy, zero, pre);
    w.phi_incoming(sxx, zero, pre);
    w.phi_incoming(sxy, zero, pre);
    let cond = w.cmp(CmpOp::SLt, Ty::I64, i, hi);
    w.condbr(cond, body, exit);
    w.switch_to(body);
    let px = w.gep(Operand::GlobalAddr(pts), i, 16, 0);
    let x = w.load(Ty::I64, px);
    let py = w.gep(Operand::GlobalAddr(pts), i, 16, 8);
    let y = w.load(Ty::I64, py);
    let nsx = w.add(Ty::I64, sx, x);
    let nsy = w.add(Ty::I64, sy, y);
    let xx = w.mul(Ty::I64, x, x);
    let nsxx = w.add(Ty::I64, sxx, xx);
    let xy = w.mul(Ty::I64, x, y);
    let nsxy = w.add(Ty::I64, sxy, xy);
    let ni = w.add(Ty::I64, i, w.iconst(Ty::I64, 1));
    w.phi_incoming(i, ni, body);
    w.phi_incoming(sx, nsx, body);
    w.phi_incoming(sy, nsy, body);
    w.phi_incoming(sxx, nsxx, body);
    w.phi_incoming(sxy, nsxy, body);
    w.br(header);
    w.switch_to(exit);
    // Stores hoisted out of the loop: the fault-propagation target.
    let rowoff = w.mul(Ty::I64, tid, w.iconst(Ty::I64, 64));
    let row = w.add(Ty::I64, Operand::GlobalAddr(partial), rowoff);
    w.store(Ty::I64, sx, row);
    let r1 = w.gep(row, w.iconst(Ty::I64, 1), 8, 0);
    w.store(Ty::I64, sy, r1);
    let r2 = w.gep(row, w.iconst(Ty::I64, 2), 8, 0);
    w.store(Ty::I64, sxx, r2);
    let r3 = w.gep(row, w.iconst(Ty::I64, 3), 8, 0);
    w.store(Ty::I64, sxy, r3);
    w.ret(None);
    m.push_func(w.finish());

    let mut f = FunctionBuilder::new("fini", &[], None);
    f.set_non_local();
    // Merge partials and emit the regression sums plus slope numerator.
    let acc = f.alloc(f.iconst(Ty::I64, 32));
    f.counted_loop(f.iconst(Ty::I64, 0), f.iconst(Ty::I64, MAX_THREADS), |b, t| {
        let row = b.gep(Operand::GlobalAddr(partial), t, 64, 0);
        for c in 0..4 {
            let cell = b.gep(row, b.iconst(Ty::I64, c), 8, 0);
            let v = b.load(Ty::I64, cell);
            let a = b.gep(acc, b.iconst(Ty::I64, c), 8, 0);
            let cur = b.load(Ty::I64, a);
            let nxt = b.add(Ty::I64, cur, v);
            b.store(Ty::I64, nxt, a);
        }
    });
    let sx = f.load(Ty::I64, acc);
    let __h3 = f.gep(acc, f.iconst(Ty::I64, 1), 8, 0);
    let sy = f.load(Ty::I64, __h3);
    let __h4 = f.gep(acc, f.iconst(Ty::I64, 2), 8, 0);
    let sxx = f.load(Ty::I64, __h4);
    let __h5 = f.gep(acc, f.iconst(Ty::I64, 3), 8, 0);
    let sxy = f.load(Ty::I64, __h5);
    // slope numerator = n*sxy - sx*sy; denominator = n*sxx - sx*sx.
    let nn = f.iconst(Ty::I64, n);
    let a = f.mul(Ty::I64, nn, sxy);
    let b_ = f.mul(Ty::I64, sx, sy);
    let num = f.sub(Ty::I64, a, b_);
    let c = f.mul(Ty::I64, nn, sxx);
    let d = f.mul(Ty::I64, sx, sx);
    let den = f.sub(Ty::I64, c, d);
    let slope_fx = f.mul(Ty::I64, num, f.iconst(Ty::I64, 1000));
    let slope = f.bin(BinOp::SDiv, Ty::I64, slope_fx, den);
    f.emit_out(Ty::I64, sx);
    f.emit_out(Ty::I64, sy);
    f.emit_out(Ty::I64, slope);
    f.ret(None);
    m.push_func(f.finish());
    Workload::new("linearreg", m, None, Some("worker"), Some("fini"))
}

/// `matrixmul`: dense `C = A × B` with a serial FP accumulation chain.
///
/// Paper profile: the best case for HAFT (1.04×) because native ILP is
/// 0.2 instructions/cycle — the dependent multiply-accumulate chain and
/// the strided (cache-missing) column loads leave the issue slots idle
/// for the shadow flow. Its cache-unfriendliness also makes it the
/// hyper-threading worst case (377× abort increase).
pub fn matrixmul(scale: Scale) -> Workload {
    let n = scale.pick(20, 56);
    let mut m = Module::new("matrixmul");
    let a = m.add_global_init("a", data::random_f64s(5, (n * n) as usize, -1.0, 1.0));
    let b = m.add_global_init("b", data::random_f64s(6, (n * n) as usize, -1.0, 1.0));
    let c = m.add_global("c", (n * n * 8) as u64);

    let mut w = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
    w.set_non_local();
    let tid = w.param(0);
    let nt = w.param(1);
    let (lo, hi) = thread_slice(&mut w, tid, nt, n);
    let accc = w.alloc(w.iconst(Ty::I64, 8));
    w.counted_loop(lo, hi, |bi, i| {
        bi.counted_loop(bi.iconst(Ty::I64, 0), bi.iconst(Ty::I64, n), |bj, j| {
            bj.store(Ty::F64, bj.fconst(0.0), accc);
            // Lean k-loop over row/column pointers: the accumulator chain
            // through memory (load+fadd+store) is the binding dependency,
            // leaving issue slots mostly idle — matrixmul's native ILP is
            // the paper's lowest, which is why HAFT is nearly free here.
            let arow = bj.mul(Ty::I64, i, bj.iconst(Ty::I64, n * 8));
            let aptr0 = bj.add(Ty::I64, Operand::GlobalAddr(a), arow);
            let bcol = bj.mul(Ty::I64, j, bj.iconst(Ty::I64, 8));
            let bptr0 = bj.add(Ty::I64, Operand::GlobalAddr(b), bcol);
            let aend = bj.add(Ty::I64, aptr0, bj.iconst(Ty::I64, n * 8));
            let pre = bj.current_block();
            let header = bj.new_block();
            let body = bj.new_block();
            let exit = bj.new_block();
            bj.br(header);
            bj.switch_to(header);
            let aptr = bj.phi(Ty::Ptr);
            let bptr = bj.phi(Ty::Ptr);
            bj.phi_incoming(aptr, aptr0, pre);
            bj.phi_incoming(bptr, bptr0, pre);
            let more = bj.cmp(CmpOp::ULt, Ty::Ptr, aptr, aend);
            bj.condbr(more, body, exit);
            bj.switch_to(body);
            let av = bj.load(Ty::F64, aptr);
            let bv = bj.load(Ty::F64, bptr);
            let prod = bj.bin(BinOp::FMul, Ty::F64, av, bv);
            let cur = bj.load(Ty::F64, accc);
            let nxt = bj.bin(BinOp::FAdd, Ty::F64, cur, prod);
            bj.store(Ty::F64, nxt, accc);
            let anext = bj.add(Ty::I64, aptr, bj.iconst(Ty::I64, 8));
            let bnext = bj.add(Ty::I64, bptr, bj.iconst(Ty::I64, n * 8));
            bj.phi_incoming(aptr, anext, body);
            bj.phi_incoming(bptr, bnext, body);
            bj.br(header);
            bj.switch_to(exit);
            let crow = bj.mul(Ty::I64, i, bj.iconst(Ty::I64, n));
            let cidx = bj.add(Ty::I64, crow, j);
            let v = bj.load(Ty::F64, accc);
            let __hc = bj.gep(Operand::GlobalAddr(c), cidx, 8, 0);
            bj.store(Ty::F64, v, __hc);
        });
    });
    w.ret(None);
    m.push_func(w.finish());

    let mut f = FunctionBuilder::new("fini", &[], None);
    f.set_non_local();
    let acc = f.alloc(f.iconst(Ty::I64, 8));
    f.store(Ty::I64, f.iconst(Ty::I64, 0), acc);
    f.counted_loop(f.iconst(Ty::I64, 0), f.iconst(Ty::I64, n * n), |bb, i| {
        let __h8 = bb.gep(Operand::GlobalAddr(c), i, 8, 0);
        let v = bb.load(Ty::F64, __h8);
        let scaled = bb.bin(BinOp::FMul, Ty::F64, v, bb.fconst(1000.0));
        let fx = bb.cast(CastKind::FpToSi, Ty::I64, scaled);
        let cur = bb.load(Ty::I64, acc);
        let mixed = bb.mul(Ty::I64, cur, bb.iconst(Ty::I64, 31));
        let nxt = bb.add(Ty::I64, mixed, fx);
        bb.store(Ty::I64, nxt, acc);
    });
    let v = f.load(Ty::I64, acc);
    f.emit_out(Ty::I64, v);
    f.ret(None);
    m.push_func(f.finish());
    Workload::new("matrixmul", m, None, Some("worker"), Some("fini"))
}

/// `pca`: column means and pairwise products into shared accumulators.
///
/// Paper profile: 83 % conflict aborts (threads contend on the shared
/// covariance accumulators); HAFT ≈ 1.78×.
pub fn pca(scale: Scale) -> Workload {
    const D: i64 = 6;
    let n = scale.pick(600, 6_000);
    let mut m = Module::new("pca");
    let rows = m.add_global_init("rows", data::random_i64s(8, (n * D) as usize, 100));
    // D sums + D*D products, shared.
    let sums = m.add_global("sums", ((D + D * D) * 8) as u64);

    let mut w = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
    w.set_non_local();
    let tid = w.param(0);
    let nt = w.param(1);
    let (lo, hi) = thread_slice(&mut w, tid, nt, n);
    let local = w.alloc(w.iconst(Ty::I64, (D + D * D) * 8));
    w.counted_loop(lo, hi, |b, r| {
        let rbase = b.gep(Operand::GlobalAddr(rows), r, (D * 8) as u32, 0);
        let mut vals = Vec::new();
        for d in 0..D {
            let __h9 = b.gep(rbase, b.iconst(Ty::I64, d), 8, 0);
            let v = b.load(Ty::I64, __h9);
            vals.push(v);
            let cell = b.gep(local, b.iconst(Ty::I64, d), 8, 0);
            let cur = b.load(Ty::I64, cell);
            let nxt = b.add(Ty::I64, cur, v);
            b.store(Ty::I64, nxt, cell);
        }
        // Upper-triangle pairwise products into the local buffer.
        for x in 0..D {
            for y in x..D {
                let prod = b.mul(Ty::I64, vals[x as usize], vals[y as usize]);
                let idx = D + x * D + y;
                let cell = b.gep(local, b.iconst(Ty::I64, idx), 8, 0);
                let cur = b.load(Ty::I64, cell);
                let nxt = b.add(Ty::I64, cur, prod);
                b.store(Ty::I64, nxt, cell);
            }
        }
        // Flush to the shared accumulators every 16 rows (pca's
        // conflict-dominated sharing pattern).
        let batch = b.bin(BinOp::And, Ty::I64, r, b.iconst(Ty::I64, 15));
        let flush = b.cmp(CmpOp::Eq, Ty::I64, batch, b.iconst(Ty::I64, 15));
        b.if_then(flush, |b2| {
            b2.counted_loop(b2.iconst(Ty::I64, 0), b2.iconst(Ty::I64, D + D * D), |b3, c| {
                let lc = b3.gep(local, c, 8, 0);
                let v = b3.load(Ty::I64, lc);
                let sc = b3.gep(Operand::GlobalAddr(sums), c, 8, 0);
                b3.rmw(RmwOp::Add, Ty::I64, sc, v);
                b3.store(Ty::I64, b3.iconst(Ty::I64, 0), lc);
            });
        });
    });
    // Final remainder flush.
    w.counted_loop(w.iconst(Ty::I64, 0), w.iconst(Ty::I64, D + D * D), |b3, c| {
        let lc = b3.gep(local, c, 8, 0);
        let v = b3.load(Ty::I64, lc);
        let sc = b3.gep(Operand::GlobalAddr(sums), c, 8, 0);
        b3.rmw(RmwOp::Add, Ty::I64, sc, v);
    });

    w.ret(None);
    m.push_func(w.finish());

    let mut f = FunctionBuilder::new("fini", &[], None);
    f.set_non_local();
    emit_checksum_i64(&mut f, Operand::GlobalAddr(sums), D + D * D);
    f.ret(None);
    m.push_func(f.finish());
    Workload::new("pca", m, None, Some("worker"), Some("fini"))
}

/// `stringmatch`: scan text for fixed keys, byte by byte.
///
/// Paper profile: branch-heavy with early exits (overhead ≈ 2.26×,
/// negligible aborts 0.15 %).
pub fn stringmatch(scale: Scale) -> Workload {
    let n = scale.pick(6_000, 60_000);
    const KEYS: [&[u8]; 4] = [b"the", b"key", b"word", b"haft"];
    let mut m = Module::new("stringmatch");
    let mut text = data::random_text(10, n as usize, 32);
    // Seed some hits.
    let mut rng = haft_ir::rng::Prng::new(11);
    for k in KEYS {
        for _ in 0..(n as usize / 200).max(4) {
            let pos = rng.below((n as usize - 8) as u64) as usize;
            text[pos..pos + k.len()].copy_from_slice(k);
        }
    }
    let input = m.add_global_init("input", text);
    let mut keybytes = Vec::new();
    for k in KEYS {
        let mut padded = k.to_vec();
        padded.resize(8, 0);
        keybytes.extend_from_slice(&padded);
    }
    let keys = m.add_global_init("keys", keybytes);
    let counts = m.add_global("counts", (MAX_THREADS * 64) as u64);

    let mut w = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
    w.set_non_local();
    let tid = w.param(0);
    let nt = w.param(1);
    let (lo, hi) = thread_slice(&mut w, tid, nt, n - 8);
    let cbase_off = w.mul(Ty::I64, tid, w.iconst(Ty::I64, 64));
    let cbase = w.add(Ty::I64, Operand::GlobalAddr(counts), cbase_off);
    let matched = w.alloc(w.iconst(Ty::I64, 8));
    w.counted_loop(lo, hi, |b, i| {
        for (ki, k) in KEYS.iter().enumerate() {
            // Compare key ki at position i with early exit.
            let keylen = k.len() as i64;
            b.store(Ty::I64, b.iconst(Ty::I64, 1), matched);
            b.counted_loop(b.iconst(Ty::I64, 0), b.iconst(Ty::I64, keylen), |b2, j| {
                let pos = b2.add(Ty::I64, i, j);
                let __h10 = b2.gep(Operand::GlobalAddr(input), pos, 1, 0);
                let tc = b2.load(Ty::I8, __h10);
                let __h11 = b2.gep(Operand::GlobalAddr(keys), j, 1, ki as i64 * 8);
                let kc = b2.load(Ty::I8, __h11);
                let same = b2.cmp(CmpOp::Eq, Ty::I8, tc, kc);
                let cur = b2.load(Ty::I64, matched);
                let upd = b2.select(Ty::I64, same, cur, b2.iconst(Ty::I64, 0));
                b2.store(Ty::I64, upd, matched);
            });
            let hit = b.load(Ty::I64, matched);
            let is_hit = b.cmp(CmpOp::Eq, Ty::I64, hit, b.iconst(Ty::I64, 1));
            b.if_then(is_hit, |b2| {
                let cell = b2.gep(cbase, b2.iconst(Ty::I64, ki as i64), 8, 0);
                let cur = b2.load(Ty::I64, cell);
                let nxt = b2.add(Ty::I64, cur, b2.iconst(Ty::I64, 1));
                b2.store(Ty::I64, nxt, cell);
            });
        }
    });
    w.ret(None);
    m.push_func(w.finish());

    let mut f = FunctionBuilder::new("fini", &[], None);
    f.set_non_local();
    emit_checksum_i64(&mut f, Operand::GlobalAddr(counts), MAX_THREADS * 8);
    f.ret(None);
    m.push_func(f.finish());
    Workload::new("stringmatch", m, None, Some("worker"), Some("fini"))
}

/// `wordcount`: hash words into a counter table.
///
/// Paper profile: the cache-sharing horror story — 14.6 % abort rate,
/// 94.9 % conflicts. The shared variant packs all bucket counters into a
/// few cache lines updated by every thread; `wordcount-ns` gives each
/// thread its own line-padded table (the authors' 47-line rewrite cut
/// aborts 7×).
pub fn wordcount(scale: Scale, ns: bool) -> Workload {
    let n = scale.pick(8_000, 60_000);
    const BUCKETS: i64 = 1024;
    let name = if ns { "wordcount-ns" } else { "wordcount" };
    let mut m = Module::new(name);
    let input = m.add_global_init("input", data::random_text(12, n as usize, 256));
    let table_sets: i64 = if ns { MAX_THREADS } else { 1 };
    let table = m.add_global("table", (table_sets * BUCKETS * 8) as u64);

    let mut w = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
    w.set_non_local();
    let tid = w.param(0);
    let nt = w.param(1);
    let (lo, hi) = thread_slice(&mut w, tid, nt, n);
    let tbase = if ns {
        let off = w.mul(Ty::I64, tid, w.iconst(Ty::I64, BUCKETS * 8));
        w.add(Ty::I64, Operand::GlobalAddr(table), off)
    } else {
        w.mov(Ty::Ptr, Operand::GlobalAddr(table))
    };
    // Scan: h = h*31 + c while in a word; on space, count bucket h%B.
    let pre = w.current_block();
    let header = w.new_block();
    let body = w.new_block();
    let exit = w.new_block();
    w.br(header);
    w.switch_to(header);
    let i = w.phi(Ty::I64);
    let h = w.phi(Ty::I64);
    w.phi_incoming(i, lo, pre);
    w.phi_incoming(h, w.iconst(Ty::I64, 0), pre);
    let cond = w.cmp(CmpOp::SLt, Ty::I64, i, hi);
    w.condbr(cond, body, exit);
    w.switch_to(body);
    let __h12 = w.gep(Operand::GlobalAddr(input), i, 1, 0);
    let c = w.load(Ty::I8, __h12);
    let cw = w.cast(CastKind::ZExt, Ty::I64, c);
    let is_space = w.cmp(CmpOp::Eq, Ty::I64, cw, w.iconst(Ty::I64, b' ' as i64));
    let hmul = w.mul(Ty::I64, h, w.iconst(Ty::I64, 31));
    let hnew = w.add(Ty::I64, hmul, cw);
    let (wb, nsb) = (w.new_block(), w.new_block());
    w.condbr(is_space, wb, nsb);
    // Word boundary: count it (if h != 0).
    w.switch_to(wb);
    let nonzero = w.cmp(CmpOp::Ne, Ty::I64, h, w.iconst(Ty::I64, 0));
    w.if_then(nonzero, |b| {
        // Hash finalization (fmix-style rounds): real wordcount does
        // substantial per-word work before touching the table.
        let mut hf = h;
        for round in 0..4 {
            let sh = b.bin(BinOp::LShr, Ty::I64, hf, b.iconst(Ty::I64, 33 - round));
            let x = b.bin(BinOp::Xor, Ty::I64, hf, sh);
            hf = b.mul(Ty::I64, x, b.iconst(Ty::I64, 0xff51afd7ed558ccdu64 as i64));
        }
        let bucket = b.bin(BinOp::URem, Ty::I64, hf, b.iconst(Ty::I64, BUCKETS));
        let cell = b.gep(tbase, bucket, 8, 0);
        if ns {
            let cur = b.load(Ty::I64, cell);
            let nxt = b.add(Ty::I64, cur, b.iconst(Ty::I64, 1));
            b.store(Ty::I64, nxt, cell);
        } else {
            b.rmw(RmwOp::Add, Ty::I64, cell, b.iconst(Ty::I64, 1));
        }
    });
    let wb_end = w.current_block();
    let latch = w.new_block();
    w.br(latch);
    w.switch_to(nsb);
    w.br(latch);
    w.switch_to(latch);
    let hnext = w.phi(Ty::I64);
    w.phi_incoming(hnext, w.iconst(Ty::I64, 0), wb_end);
    w.phi_incoming(hnext, hnew, nsb);
    let inext = w.add(Ty::I64, i, w.iconst(Ty::I64, 1));
    w.phi_incoming(i, inext, latch);
    w.phi_incoming(h, hnext, latch);
    w.br(header);
    w.switch_to(exit);
    w.ret(None);
    m.push_func(w.finish());

    let mut f = FunctionBuilder::new("fini", &[], None);
    f.set_non_local();
    emit_checksum_i64(&mut f, Operand::GlobalAddr(table), table_sets * BUCKETS);
    f.ret(None);
    m.push_func(f.finish());
    Workload::new(name, m, None, Some("worker"), Some("fini"))
}
