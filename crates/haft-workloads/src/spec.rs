//! Workload registry.

use haft_ir::module::Module;
use haft_vm::RunSpec;

/// Maximum thread count any kernel supports; per-thread regions are sized
/// for this (the paper's testbed exposes 14 cores / 28 hyper-threads, and
/// the case studies run up to 16 client threads).
pub const MAX_THREADS: i64 = 16;

/// Input scale: `Small` for fault-injection campaigns (the paper uses the
/// smallest inputs there), `Large` for performance runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    Small,
    Large,
}

impl Scale {
    /// Picks the scale-appropriate size.
    pub fn pick(self, small: i64, large: i64) -> i64 {
        match self {
            Scale::Small => small,
            Scale::Large => large,
        }
    }
}

/// A ready-to-run benchmark: a native module plus its phase entry points.
#[derive(Clone, Debug)]
pub struct Workload {
    pub name: &'static str,
    pub module: Module,
    pub init: Option<&'static str>,
    pub worker: Option<&'static str>,
    pub fini: Option<&'static str>,
}

impl Workload {
    /// Builds a workload descriptor (used by the kernel constructors and
    /// the case-study crate).
    pub fn new(
        name: &'static str,
        module: Module,
        init: Option<&'static str>,
        worker: Option<&'static str>,
        fini: Option<&'static str>,
    ) -> Self {
        Workload { name, module, init, worker, fini }
    }

    /// The entry points as a VM run spec.
    pub fn run_spec(&self) -> RunSpec<'_> {
        RunSpec { init: self.init, worker: self.worker, fini: self.fini }
    }
}

/// Names of all workloads, in the paper's presentation order (Phoenix
/// first, then PARSEC — [`PHOENIX_NAMES`] ++ [`PARSEC_NAMES`]).
pub const WORKLOAD_NAMES: [&str; 17] = [
    "histogram",
    "kmeans",
    "kmeans-ns",
    "linearreg",
    "matrixmul",
    "pca",
    "stringmatch",
    "wordcount",
    "wordcount-ns",
    "blackscholes",
    "canneal",
    "dedup",
    "ferret",
    "streamcluster",
    "swaptions",
    "vips",
    "x264",
];

/// The Phoenix 2.0 selection, including the authors' no-sharing rewrites.
pub const PHOENIX_NAMES: [&str; 9] = [
    "histogram",
    "kmeans",
    "kmeans-ns",
    "linearreg",
    "matrixmul",
    "pca",
    "stringmatch",
    "wordcount",
    "wordcount-ns",
];

/// The Phoenix applications as shipped (no `-ns` rewrites) — the set the
/// paper's fault-injection and Elzar comparisons sweep.
pub const PHOENIX_BASE_NAMES: [&str; 7] =
    ["histogram", "kmeans", "linearreg", "matrixmul", "pca", "stringmatch", "wordcount"];

/// The PARSEC 3.0 selection.
pub const PARSEC_NAMES: [&str; 8] =
    ["blackscholes", "canneal", "dedup", "ferret", "streamcluster", "swaptions", "vips", "x264"];

/// Builds one workload by name.
pub fn workload_by_name(name: &str, scale: Scale) -> Option<Workload> {
    Some(match name {
        "histogram" => crate::phoenix::histogram(scale),
        "kmeans" => crate::phoenix::kmeans(scale, false),
        "kmeans-ns" => crate::phoenix::kmeans(scale, true),
        "linearreg" => crate::phoenix::linearreg(scale),
        "matrixmul" => crate::phoenix::matrixmul(scale),
        "pca" => crate::phoenix::pca(scale),
        "stringmatch" => crate::phoenix::stringmatch(scale),
        "wordcount" => crate::phoenix::wordcount(scale, false),
        "wordcount-ns" => crate::phoenix::wordcount(scale, true),
        "blackscholes" => crate::parsec::blackscholes(scale),
        "canneal" => crate::parsec::canneal(scale),
        "dedup" => crate::parsec::dedup(scale),
        "ferret" => crate::parsec::ferret(scale),
        "streamcluster" => crate::parsec::streamcluster(scale),
        "swaptions" => crate::parsec::swaptions(scale),
        "vips" => crate::parsec::vips(scale),
        "x264" => crate::parsec::x264(scale),
        _ => return None,
    })
}

/// Builds every workload at the given scale.
pub fn all_workloads(scale: Scale) -> Vec<Workload> {
    WORKLOAD_NAMES.iter().map(|n| workload_by_name(n, scale).expect("registered name")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_consistent() {
        for name in WORKLOAD_NAMES {
            let w = workload_by_name(name, Scale::Small).expect("builds");
            assert_eq!(w.name, name);
            assert!(w.worker.is_some(), "{name} has a parallel phase");
            assert!(w.fini.is_some(), "{name} emits output");
        }
        assert!(workload_by_name("nope", Scale::Small).is_none());
        assert_eq!(all_workloads(Scale::Small).len(), WORKLOAD_NAMES.len());
    }

    #[test]
    fn suite_lists_partition_the_registry() {
        let all: Vec<&str> = PHOENIX_NAMES.iter().chain(PARSEC_NAMES.iter()).copied().collect();
        assert_eq!(all, WORKLOAD_NAMES.to_vec(), "Phoenix ++ PARSEC is the full registry");
        for name in PHOENIX_BASE_NAMES {
            assert!(PHOENIX_NAMES.contains(&name), "{name} is a Phoenix app");
            assert!(!name.ends_with("-ns"), "{name}: base list excludes rewrites");
        }
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Small.pick(1, 2), 1);
        assert_eq!(Scale::Large.pick(1, 2), 2);
    }
}
