//! Workload integration tests: every kernel verifies, runs, is
//! schedule-independent, and survives the full HAFT pipeline unchanged.

use haft_ir::verify::verify_module;
use haft_passes::{harden, HardenConfig};
use haft_vm::{RunOutcome, Vm, VmConfig};
use haft_workloads::{all_workloads, workload_by_name, Scale, WORKLOAD_NAMES};

fn cfg(threads: usize, seed: u64) -> VmConfig {
    VmConfig {
        n_threads: threads,
        seed,
        tx_threshold: 1000,
        max_instructions: 400_000_000,
        ..Default::default()
    }
}

#[test]
fn all_workloads_verify() {
    for w in all_workloads(Scale::Small) {
        verify_module(&w.module).unwrap_or_else(|e| panic!("{}: {e:?}", w.name));
    }
}

#[test]
fn all_workloads_complete_natively_and_produce_output() {
    for w in all_workloads(Scale::Small) {
        let r = Vm::run(&w.module, cfg(2, 1), w.run_spec());
        assert_eq!(r.outcome, RunOutcome::Completed, "{}", w.name);
        assert!(!r.output.is_empty(), "{} must emit output", w.name);
        assert!(r.instructions > 1000, "{} too trivial", w.name);
    }
}

#[test]
fn outputs_are_schedule_independent() {
    // The fault-injection methodology requires that the reference output
    // not depend on thread interleaving (the paper dropped fluidanimate
    // for violating this). Different scheduler seeds must give identical
    // output.
    for w in all_workloads(Scale::Small) {
        let a = Vm::run(&w.module, cfg(3, 101), w.run_spec());
        let b = Vm::run(&w.module, cfg(3, 202), w.run_spec());
        assert_eq!(a.outcome, RunOutcome::Completed, "{}", w.name);
        assert_eq!(a.output, b.output, "{} output depends on schedule", w.name);
    }
}

#[test]
fn hardened_workloads_match_native_output() {
    for w in all_workloads(Scale::Small) {
        let native = Vm::run(&w.module, cfg(2, 7), w.run_spec());
        assert_eq!(native.outcome, RunOutcome::Completed, "{} native", w.name);
        let hardened = harden(&w.module, &HardenConfig::haft());
        verify_module(&hardened).unwrap_or_else(|e| panic!("{} hardened: {e:?}", w.name));
        let r = Vm::run(&hardened, cfg(2, 7), w.run_spec());
        assert_eq!(r.outcome, RunOutcome::Completed, "{} hardened", w.name);
        assert_eq!(r.output, native.output, "{} output changed by HAFT", w.name);
        assert!(r.instructions > native.instructions, "{} hardening must add instructions", w.name);
        assert!(r.htm.commits > 0, "{} must commit transactions", w.name);
    }
}

#[test]
fn ilr_only_also_preserves_output() {
    for name in ["histogram", "linearreg", "matrixmul", "wordcount", "x264"] {
        let w = workload_by_name(name, Scale::Small).unwrap();
        let native = Vm::run(&w.module, cfg(2, 9), w.run_spec());
        let hardened = harden(&w.module, &HardenConfig::ilr_only());
        let r = Vm::run(&hardened, cfg(2, 9), w.run_spec());
        assert_eq!(r.outcome, RunOutcome::Completed, "{name}");
        assert_eq!(r.output, native.output, "{name}");
    }
}

#[test]
fn sharing_variants_differ_in_conflict_profile() {
    // kmeans (shared accumulators) must see more conflict aborts than
    // kmeans-ns (privatized) under the same HAFT config.
    let shared = workload_by_name("kmeans", Scale::Small).unwrap();
    let ns = workload_by_name("kmeans-ns", Scale::Small).unwrap();
    let run = |w: &haft_workloads::Workload| {
        let hardened = harden(&w.module, &HardenConfig::haft());
        Vm::run(&hardened, cfg(4, 3), w.run_spec())
    };
    let rs = run(&shared);
    let rn = run(&ns);
    let conflicts = |r: &haft_vm::RunResult| {
        r.htm.aborts.get(&haft_htm::AbortCause::Conflict).copied().unwrap_or(0)
    };
    assert!(
        conflicts(&rs) > conflicts(&rn),
        "kmeans conflicts {} vs ns {}",
        conflicts(&rs),
        conflicts(&rn)
    );
}

#[test]
fn names_cover_paper_table() {
    // One entry per Table 2 row (the paper's benchmark column).
    assert_eq!(WORKLOAD_NAMES.len(), 17);
}
