//! Workload integration tests: every kernel verifies, runs, is
//! schedule-independent, and survives the full HAFT pipeline unchanged.

use haft::Experiment;
use haft_ir::verify::verify_module;
use haft_passes::HardenConfig;
use haft_vm::VmConfig;
use haft_workloads::{all_workloads, workload_by_name, Scale, Workload, WORKLOAD_NAMES};

fn cfg(threads: usize, seed: u64) -> VmConfig {
    VmConfig {
        n_threads: threads,
        seed,
        tx_threshold: 1000,
        max_instructions: 400_000_000,
        ..Default::default()
    }
}

fn exp(w: &Workload, threads: usize, seed: u64) -> Experiment<'_> {
    Experiment::workload(w).vm(cfg(threads, seed))
}

#[test]
fn all_workloads_verify() {
    for w in all_workloads(Scale::Small) {
        verify_module(&w.module).unwrap_or_else(|e| panic!("{}: {e:?}", w.name));
    }
}

#[test]
fn all_workloads_complete_natively_and_produce_output() {
    for w in all_workloads(Scale::Small) {
        let r = exp(&w, 2, 1).run().expect_completed(w.name);
        assert!(!r.output.is_empty(), "{} must emit output", w.name);
        assert!(r.instructions > 1000, "{} too trivial", w.name);
    }
}

#[test]
fn outputs_are_schedule_independent() {
    // The fault-injection methodology requires that the reference output
    // not depend on thread interleaving (the paper dropped fluidanimate
    // for violating this). Different scheduler seeds must give identical
    // output.
    for w in all_workloads(Scale::Small) {
        let a = exp(&w, 3, 101).run().expect_completed(w.name);
        let b = exp(&w, 3, 202).run().expect_completed(w.name);
        assert_eq!(a.output, b.output, "{} output depends on schedule", w.name);
    }
}

#[test]
fn hardened_workloads_match_native_output() {
    for w in all_workloads(Scale::Small) {
        let native = exp(&w, 2, 7).run().expect_completed(w.name);
        // The PassManager re-verifies the module at every pass boundary
        // in this (debug) build, replacing the old manual verify call.
        let v = exp(&w, 2, 7).harden(HardenConfig::haft()).run();
        assert!(v.pass_stats.total_added() > 0, "{} hardening must add instructions", w.name);
        let r = v.expect_completed(w.name);
        assert_eq!(r.output, native.output, "{} output changed by HAFT", w.name);
        assert!(r.instructions > native.instructions, "{} hardening must add instructions", w.name);
        assert!(r.htm.commits > 0, "{} must commit transactions", w.name);
    }
}

#[test]
fn ilr_only_also_preserves_output() {
    for name in ["histogram", "linearreg", "matrixmul", "wordcount", "x264"] {
        let w = workload_by_name(name, Scale::Small).unwrap();
        let native = exp(&w, 2, 9).run().expect_completed(name);
        let r = exp(&w, 2, 9).harden(HardenConfig::ilr_only()).run().expect_completed(name);
        assert_eq!(r.output, native.output, "{name}");
    }
}

#[test]
fn sharing_variants_differ_in_conflict_profile() {
    // kmeans (shared accumulators) must see more conflict aborts than
    // kmeans-ns (privatized) under the same HAFT config.
    let shared = workload_by_name("kmeans", Scale::Small).unwrap();
    let ns = workload_by_name("kmeans-ns", Scale::Small).unwrap();
    let run = |w: &Workload| exp(w, 4, 3).harden(HardenConfig::haft()).run().run;
    let rs = run(&shared);
    let rn = run(&ns);
    let conflicts = |r: &haft_vm::RunResult| {
        r.htm.aborts.get(&haft_htm::AbortCause::Conflict).copied().unwrap_or(0)
    };
    assert!(
        conflicts(&rs) > conflicts(&rn),
        "kmeans conflicts {} vs ns {}",
        conflicts(&rs),
        conflicts(&rn)
    );
}

#[test]
fn names_cover_paper_table() {
    // One entry per Table 2 row (the paper's benchmark column).
    assert_eq!(WORKLOAD_NAMES.len(), 17);
}
