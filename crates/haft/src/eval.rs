//! Shared evaluation methodology: the standard variant grid, per-workload
//! transaction thresholds, and the perf-run VM shape.
//!
//! The paper's evaluation sweeps one grid — {native, ILR, TX, HAFT} (+
//! the Elzar-style TMR foil) × workloads × thresholds — and both the
//! bench harness (`haft-bench`) and the report generator (`haft-report`)
//! walk it. This module is the single definition of that grid, so the
//! two cannot drift apart on methodology defaults.

use haft_passes::HardenConfig;
use haft_vm::VmConfig;

/// The standard variant columns of every overhead table, in presentation
/// order: the native baseline, the paper's ILR/TX components, full HAFT,
/// and the Elzar-style TMR backend.
pub fn standard_variants() -> [(&'static str, HardenConfig); 5] {
    [
        ("native", HardenConfig::native()),
        ("ILR", HardenConfig::ilr_only()),
        ("TX", HardenConfig::tx_only()),
        ("HAFT", HardenConfig::haft()),
        ("TMR", HardenConfig::tmr()),
    ]
}

/// The hardened (non-baseline) subset of [`standard_variants`] — what a
/// `compare` call takes, since `Experiment::compare` supplies the native
/// baseline itself.
pub fn hardened_variants() -> [(&'static str, HardenConfig); 4] {
    let [_, ilr, tx, haft, tmr] = standard_variants();
    [ilr, tx, haft, tmr]
}

/// The serving-experiment variant grid: the unprotected baseline plus
/// the two full-strength hardening backends. Shared by the
/// `service_scaling` bench and the report's serving section so the two
/// measure the same thing.
pub fn serving_variants() -> [(&'static str, HardenConfig); 3] {
    [
        ("native", HardenConfig::native()),
        ("HAFT", HardenConfig::haft()),
        ("TMR", HardenConfig::tmr()),
    ]
}

/// Per-benchmark transaction-size threshold, mirroring the paper's
/// methodology: "we set for each benchmark the transaction size to the
/// greatest value such that the percentage of aborts is sufficiently low"
/// (§5.3 — e.g. 1000 for kmeans and pca, 5000 for stringmatch and
/// blackscholes).
pub fn recommended_threshold(name: &str) -> u64 {
    match name {
        "kmeans" | "pca" | "wordcount" | "streamcluster" | "vips" => 1000,
        "swaptions" | "ferret" | "dedup" => 2000,
        _ => 5000,
    }
}

/// The VM configuration of a performance run: the requested thread count
/// and threshold, with an instruction budget large enough that no Large
/// -scale workload hangs against it.
pub fn perf_vm(threads: usize, tx_threshold: u64) -> VmConfig {
    VmConfig {
        n_threads: threads,
        tx_threshold,
        max_instructions: 2_000_000_000,
        ..VmConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haft_passes::Backend;

    #[test]
    fn variant_grid_labels_and_order() {
        let vs = standard_variants();
        let labels: Vec<String> = vs.iter().map(|(_, hc)| hc.label()).collect();
        assert_eq!(labels, ["native", "ILR", "TX", "HAFT", "TMR"]);
        for (name, hc) in &vs {
            assert_eq!(*name, hc.label(), "display name matches the config label");
        }
        assert_eq!(vs[4].1.backend, Backend::Tmr);
        let hardened: Vec<&str> = hardened_variants().iter().map(|(n, _)| *n).collect();
        assert_eq!(hardened, ["ILR", "TX", "HAFT", "TMR"]);
        let serving: Vec<String> = serving_variants().iter().map(|(_, hc)| hc.label()).collect();
        assert_eq!(serving, ["native", "HAFT", "TMR"]);
    }

    #[test]
    fn thresholds_follow_paper_examples() {
        assert_eq!(recommended_threshold("kmeans"), 1000);
        assert_eq!(recommended_threshold("pca"), 1000);
        assert_eq!(recommended_threshold("stringmatch"), 5000);
        assert_eq!(recommended_threshold("blackscholes"), 5000);
        assert_eq!(recommended_threshold("ferret"), 2000);
    }

    #[test]
    fn perf_vm_shape() {
        let vm = perf_vm(8, 1000);
        assert_eq!(vm.n_threads, 8);
        assert_eq!(vm.tx_threshold, 1000);
        assert!(vm.max_instructions >= 2_000_000_000);
    }
}
