//! The `Experiment` pipeline: HAFT's evaluation grid as a fluent API.
//!
//! The paper's evaluation is a grid of experiments — {native, ILR, TX,
//! HAFT} × optimization levels × transaction sizes × workloads × fault
//! campaigns. An [`Experiment`] captures one cell of that grid (a module,
//! a harden configuration, a VM configuration, and entry points) and the
//! terminal operations run it:
//!
//! * [`Experiment::run`] — harden and execute once.
//! * [`Experiment::run_with_fault`] — same, with a single-event upset
//!   injected mid-trace.
//! * [`Experiment::campaign`] — a full fault-injection campaign
//!   (reference run + N classified injections).
//! * [`Experiment::compare`] — run several harden configurations
//!   side-by-side against the shared native baseline and report
//!   overheads.
//!
//! Every terminal op reports through [`VariantReport`] /
//! [`ExperimentReport`]: outputs, overhead vs native, per-pass
//! instruction deltas, transaction/abort statistics, and (for campaigns)
//! the Table 1 outcome histogram.

use std::path::PathBuf;

use haft_faults::{run_campaign_from, CampaignConfig, CampaignReport};
use haft_ir::module::Module;
use haft_passes::{Backend, HardenConfig, PassManager, PassStats};
use haft_serve::{ServeConfig, ServeMode, ServiceReport};
use haft_trace::TraceBuf;
use haft_vm::{CycleProfile, FaultPlan, RunOutcome, RunResult, RunSpec, Vm, VmConfig};
use haft_workloads::Workload;

/// One harden-and-run pipeline over a borrowed module.
///
/// Construction never executes anything; the terminal ops do. The
/// borrowed module is never mutated — hardening always transforms a
/// copy, built lazily on the first terminal op and cached, so fault
/// sweeps that call [`Experiment::run_with_fault`] in a loop harden
/// once, not once per injection. Changing the harden configuration
/// invalidates the cache; VM/spec changes keep it.
#[derive(Clone, Debug)]
pub struct Experiment<'a> {
    module: &'a Module,
    cfg: HardenConfig,
    vm: VmConfig,
    spec: RunSpec<'a>,
    trace_path: Option<PathBuf>,
    built: std::cell::OnceCell<(Module, PassStats)>,
}

impl<'a> Experiment<'a> {
    /// An experiment over `module`: native (no hardening), default VM,
    /// empty run spec.
    pub fn new(module: &'a Module) -> Self {
        Experiment {
            module,
            cfg: HardenConfig::native(),
            vm: VmConfig::default(),
            spec: RunSpec::default(),
            trace_path: None,
            built: std::cell::OnceCell::new(),
        }
    }

    /// An experiment over a benchmark [`Workload`]: its module and its
    /// entry points.
    pub fn workload(w: &'a Workload) -> Self {
        Self::new(&w.module).spec(w.run_spec())
    }

    /// Sets the harden configuration (default: native).
    pub fn harden(mut self, cfg: HardenConfig) -> Self {
        self.cfg = cfg;
        self.built = std::cell::OnceCell::new();
        self
    }

    /// Selects a hardening backend by its full-strength preset:
    /// [`Backend::IlrTx`] is [`HardenConfig::haft`] (duplicate, detect,
    /// roll back), [`Backend::Tmr`] is [`HardenConfig::tmr`] (triplicate
    /// and mask by majority vote), [`Backend::Abft`] is
    /// [`HardenConfig::abft`] (checksum lanes over recognized chains,
    /// full-HAFT fallback elsewhere). Use [`Experiment::harden`] for
    /// fine-grained pass configuration; like it, this invalidates the
    /// cached hardened module.
    pub fn backend(self, b: Backend) -> Self {
        self.harden(match b {
            Backend::IlrTx => HardenConfig::haft(),
            Backend::Tmr => HardenConfig::tmr(),
            Backend::Abft => HardenConfig::abft(),
        })
    }

    /// Sets the whole VM configuration (default: [`VmConfig::default`]).
    pub fn vm(mut self, vm: VmConfig) -> Self {
        self.vm = vm;
        self
    }

    /// Sets the program entry points.
    pub fn spec(mut self, spec: RunSpec<'a>) -> Self {
        self.spec = spec;
        self
    }

    /// Convenience: simulated thread count for the parallel phase.
    pub fn threads(mut self, n: usize) -> Self {
        self.vm.n_threads = n;
        self
    }

    /// Convenience: the transaction-size threshold (paper §5.3).
    pub fn tx_threshold(mut self, t: u64) -> Self {
        self.vm.tx_threshold = t;
        self
    }

    /// Convenience: the VM's run-time lock-elision wrapper. (Pass-side
    /// elision is configured via [`HardenConfig::haft_with_elision`].)
    pub fn lock_elision(mut self, on: bool) -> Self {
        self.vm.lock_elision = on;
        self
    }

    /// Convenience: the scheduler seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.vm.seed = seed;
        self
    }

    /// Exports a Chrome trace-event JSON file (Perfetto-loadable) from
    /// the next [`Experiment::run`] or [`Experiment::serve_in`] terminal
    /// op. Tracing never changes what the run measures — the returned
    /// report is bit-identical to an untraced run (pinned by the
    /// differential trace test).
    ///
    /// Timestamp units by terminal op: `run` exports raw virtual cycles;
    /// `serve`/`serve_in` export virtual nanoseconds, with native-mode
    /// pool scheduling events on the host wall clock under their own
    /// track group (each carries the other clock as an argument).
    pub fn trace(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace_path = Some(path.into());
        self
    }

    /// Convenience: the execution engine. Both engines produce identical
    /// [`RunResult`]s (see [`haft_vm::Engine`]); selecting
    /// [`haft_vm::Engine::Interp`] trades wall-clock speed for the
    /// reference interpreter the differential harness pins against.
    pub fn engine(mut self, engine: haft_vm::Engine) -> Self {
        self.vm.engine = engine;
        self
    }

    /// Hardens a copy of the module (without running it) and returns it
    /// with the per-pass stats. Useful when only the transformed IR is
    /// needed — static instruction counts, printing, parsing.
    pub fn build(&self) -> (Module, PassStats) {
        self.built().clone()
    }

    /// The cached harden result, built on first use.
    fn built(&self) -> &(Module, PassStats) {
        self.built.get_or_init(|| PassManager::from_config(&self.cfg).run_on(self.module))
    }

    /// A caller-supplied `vm.fault` would be silently dropped by this
    /// terminal op — catch the misuse in debug builds instead.
    fn debug_assert_no_fault(&self, op: &str) {
        debug_assert!(
            self.vm.fault.is_none(),
            "Experiment::{op} ignores vm.fault; use run_with_fault (or campaign) to inject"
        );
    }

    fn run_built(&self, module: &Module, pass_stats: PassStats, vm: VmConfig) -> VariantReport {
        let run = match &self.trace_path {
            None => Vm::run(module, vm, self.spec),
            Some(path) => {
                let mut buf = TraceBuf::new();
                let run = Vm::run_traced(module, vm, self.spec, &mut buf);
                write_trace(path, &buf);
                run
            }
        };
        VariantReport {
            label: self.cfg.label(),
            backend: self.cfg.backend,
            pass_stats,
            run,
            overhead_vs_native: None,
            campaign: None,
        }
    }

    /// Hardens (cached) and executes once, fault-free.
    ///
    /// Debug-asserts that the VM configuration carries no fault plan —
    /// injection goes through [`Experiment::run_with_fault`].
    pub fn run(&self) -> VariantReport {
        self.debug_assert_no_fault("run");
        let (module, stats) = self.built();
        let mut vm = self.vm.clone();
        vm.fault = None;
        self.run_built(module, stats.clone(), vm)
    }

    /// [`Experiment::run`] with cycle-attribution profiling: also returns
    /// the per-function × op-class virtual-cycle histogram, whose total
    /// equals the run's `cpu_cycles` exactly (see
    /// [`haft_vm::CycleProfile`]). The run itself is bit-identical to an
    /// unprofiled one.
    pub fn run_profiled(&self) -> (VariantReport, CycleProfile) {
        self.debug_assert_no_fault("run_profiled");
        let (module, stats) = self.built();
        let mut vm = self.vm.clone();
        vm.fault = None;
        let (run, profile) = Vm::run_profiled(module, vm, self.spec);
        let report = VariantReport {
            label: self.cfg.label(),
            backend: self.cfg.backend,
            pass_stats: stats.clone(),
            run,
            overhead_vs_native: None,
            campaign: None,
        };
        (report, profile)
    }

    /// Hardens (cached) and executes once with a single-event upset
    /// injected at `plan`'s dynamic occurrence.
    pub fn run_with_fault(&self, plan: FaultPlan) -> VariantReport {
        let (module, stats) = self.built();
        let mut vm = self.vm.clone();
        vm.fault = Some(plan);
        self.run_built(module, stats.clone(), vm)
    }

    /// Hardens once, runs the fault-free reference, then the full
    /// injection campaign. The experiment's VM configuration is used for
    /// every run (the `vm` field of `cfg` is ignored); `cfg` supplies the
    /// injection count, seed, and parallelism.
    ///
    /// The returned report's `run` is the reference run and `campaign`
    /// holds the Table 1 outcome histogram.
    ///
    /// # Panics
    ///
    /// Panics if the reference run does not complete (the program under
    /// test must be correct before injecting faults into it).
    pub fn campaign(&self, cfg: CampaignConfig) -> VariantReport {
        self.debug_assert_no_fault("campaign");
        let (module, stats) = self.built();
        let mut vm = self.vm.clone();
        vm.fault = None;
        let golden = Vm::run(module, vm.clone(), self.spec);
        let campaign_cfg = CampaignConfig { vm, ..cfg };
        let report = run_campaign_from(module, self.spec, &campaign_cfg, &golden);
        VariantReport {
            label: self.cfg.label(),
            backend: self.cfg.backend,
            pass_stats: stats.clone(),
            run: golden,
            overhead_vs_native: None,
            campaign: Some(report),
        }
    }

    /// Hardens (cached) and puts the result under live traffic: drives
    /// the configured request stream through `cfg.shards` simulated
    /// shard cores of this experiment's module and reports throughput,
    /// tail latency, per-shard utilization, and — when `cfg.faults` is
    /// attached — availability and per-request outcomes.
    ///
    /// The experiment must be built over a shard-servable module
    /// ([`haft_apps::kvstore::kv_shard`]); a latency or load sweep that
    /// calls `serve` in a loop hardens once, via the same cache as every
    /// other terminal op. The experiment's VM configuration supplies the
    /// cost model; the harness pins it to one thread per shard.
    ///
    /// # Panics
    ///
    /// Panics if the module lacks the shard request-buffer globals or
    /// the configuration is degenerate (see [`haft_serve::run_service`]).
    pub fn serve(&self, cfg: &ServeConfig) -> ServiceReport {
        self.serve_in(ServeMode::Sim, cfg)
    }

    /// [`Experiment::serve`] with an explicit execution mode: the
    /// deterministic discrete-event simulation ([`ServeMode::Sim`], what
    /// `serve` runs and every pinned table is generated from), or real
    /// threads ([`ServeMode::Native`]) — N shard actors on a
    /// work-stealing pool of `workers` OS threads via the
    /// `haft-runtime` crate, which additionally fills
    /// [`haft_serve::WallReport`] with host wall-clock throughput.
    ///
    /// Both modes harden through the same per-experiment cache, take the
    /// identical configuration, and return the identical report schema;
    /// `Sim` is bit-reproducible while `Native` tracks it within the
    /// tolerance band pinned by `haft-runtime`'s twin-validation test.
    pub fn serve_in(&self, mode: ServeMode, cfg: &ServeConfig) -> ServiceReport {
        self.debug_assert_no_fault("serve_in");
        let (module, _stats) = self.built();
        let mut vm = self.vm.clone();
        vm.fault = None;
        let label = self.cfg.label();
        match (&self.trace_path, mode) {
            (None, ServeMode::Sim) => haft_serve::run_service(module, self.spec, vm, label, cfg),
            (None, ServeMode::Native { workers }) => {
                haft_runtime::run_native(module, self.spec, vm, label, cfg, workers)
            }
            (Some(path), ServeMode::Sim) => {
                let mut buf = TraceBuf::new();
                let r = haft_serve::run_service_traced(module, self.spec, vm, label, cfg, &mut buf);
                write_trace(path, &buf);
                r
            }
            (Some(path), ServeMode::Native { workers }) => {
                let mut buf = TraceBuf::new();
                let opts = haft_runtime::NativeOpts { workers: workers.max(1), shake_seed: None };
                let r = haft_runtime::run_native_traced(
                    module, self.spec, vm, label, cfg, opts, &mut buf,
                );
                write_trace(path, &buf);
                r
            }
        }
    }

    /// Runs the native baseline plus every configuration in `configs`
    /// (in the given order) under the same VM configuration and entry
    /// points, and reports each variant's overhead against the shared
    /// baseline.
    ///
    /// The experiment's own harden configuration is ignored; the
    /// baseline is always [`HardenConfig::native`].
    pub fn compare(&self, configs: &[HardenConfig]) -> ExperimentReport {
        self.debug_assert_no_fault("compare");
        let mut vm = self.vm.clone();
        vm.fault = None;
        // Variant runs never trace: they would all race for one path.
        let mut base = self.clone();
        base.trace_path = None;
        let baseline =
            base.clone().harden(HardenConfig::native()).vm(vm.clone()).run().with_overhead(1.0);
        let native_cycles = baseline.run.wall_cycles.max(1);
        let mut variants = vec![baseline];
        for cfg in configs {
            let v = base.clone().harden(cfg.clone()).vm(vm.clone()).run();
            let overhead = v.run.wall_cycles as f64 / native_cycles as f64;
            variants.push(v.with_overhead(overhead));
        }
        ExperimentReport { variants }
    }
}

/// Writes the collected events as Chrome trace-event JSON.
///
/// # Panics
///
/// Panics when the file cannot be written — a trace the caller asked for
/// and silently lost would be worse.
fn write_trace(path: &std::path::Path, buf: &TraceBuf) {
    haft_trace::write_chrome(path, &buf.events)
        .unwrap_or_else(|e| panic!("failed to write trace to {}: {e}", path.display()));
}

/// Everything measured for one harden configuration.
#[derive(Clone, Debug)]
pub struct VariantReport {
    /// [`HardenConfig::label`] of the configuration that produced this
    /// variant.
    pub label: String,
    /// The hardening strategy the configuration selected — carried as
    /// the enum so callers can dispatch on it directly instead of
    /// string-matching labels like `TMR-tl`. (A `native` variant carries
    /// the default [`Backend::IlrTx`] with both of its passes disabled,
    /// exactly as its `HardenConfig` does.)
    pub backend: Backend,
    /// Per-pass instruction deltas from the [`PassManager`].
    pub pass_stats: PassStats,
    /// The measured run (for campaigns: the fault-free reference run).
    pub run: RunResult,
    /// Wall-cycle ratio against the native baseline; present only on
    /// variants produced by [`Experiment::compare`].
    pub overhead_vs_native: Option<f64>,
    /// Outcome histogram; present only on variants produced by
    /// [`Experiment::campaign`].
    pub campaign: Option<CampaignReport>,
}

impl VariantReport {
    fn with_overhead(mut self, overhead: f64) -> Self {
        self.overhead_vs_native = Some(overhead);
        self
    }

    /// True if the run completed.
    pub fn completed(&self) -> bool {
        self.run.outcome == RunOutcome::Completed
    }

    /// The run, asserted completed — the common "this experiment must
    /// work" pattern in tests and benches.
    ///
    /// # Panics
    ///
    /// Panics with `context` if the run did not complete.
    pub fn expect_completed(self, context: &str) -> RunResult {
        assert_eq!(
            self.run.outcome,
            RunOutcome::Completed,
            "{context}: variant `{}` did not complete",
            self.label
        );
        self.run
    }

    /// One-line summary: label, overhead (if known), instruction growth,
    /// HTM commit/abort/coverage stats, campaign histogram (if any).
    pub fn summary(&self) -> String {
        let mut s = format!("{:<10}", self.label);
        if let Some(oh) = self.overhead_vs_native {
            s.push_str(&format!(" {oh:5.2}x"));
        }
        s.push_str(&format!(
            "  +{} insts  {} commits  {:.1}% aborts  {:.1}% cov",
            self.pass_stats.total_added(),
            self.run.htm.commits,
            self.run.htm.abort_rate_pct(),
            self.run.htm.coverage_pct()
        ));
        if let Some(c) = &self.campaign {
            s.push_str("  ");
            s.push_str(&c.summary());
        }
        s
    }
}

/// Side-by-side variant comparison from [`Experiment::compare`].
///
/// `variants[0]` is always the native baseline; the rest follow the
/// caller's configuration order.
#[derive(Clone, Debug)]
pub struct ExperimentReport {
    pub variants: Vec<VariantReport>,
}

impl ExperimentReport {
    /// The native baseline.
    pub fn baseline(&self) -> &VariantReport {
        &self.variants[0]
    }

    /// Looks a variant up by its [`HardenConfig::label`].
    pub fn variant(&self, label: &str) -> Option<&VariantReport> {
        self.variants.iter().find(|v| v.label == label)
    }

    /// Overhead vs native of the labelled variant.
    pub fn overhead(&self, label: &str) -> Option<f64> {
        self.variant(label).and_then(|v| v.overhead_vs_native)
    }

    /// True when every variant completed and produced the baseline's
    /// output — the semantic-preservation check of every paper table.
    pub fn outputs_agree(&self) -> bool {
        let golden = &self.baseline().run.output;
        self.variants.iter().all(|v| v.completed() && &v.run.output == golden)
    }

    /// Multi-line table, one [`VariantReport::summary`] per variant.
    pub fn summary(&self) -> String {
        self.variants.iter().map(|v| v.summary()).collect::<Vec<_>>().join("\n")
    }
}
