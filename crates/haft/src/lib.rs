//! HAFT — Hardware-Assisted Fault Tolerance.
//!
//! A from-scratch Rust reproduction of *"HAFT: Hardware-assisted Fault
//! Tolerance"* (Kuvaiskii, Faqeh, Bhatotia, Felber, Fetzer — EuroSys
//! 2016): a compiler-based technique that protects unmodified
//! multithreaded programs against transient CPU faults by combining
//! **instruction-level redundancy** (ILR — a duplicated shadow data flow
//! with checks) for detection with **hardware-transactional-memory
//! rollback** (TX — whole-program transactification over a TSX-like HTM)
//! for recovery.
//!
//! The workspace contains every substrate the paper depends on, built
//! from scratch:
//!
//! | Crate | Paper counterpart |
//! |---|---|
//! | [`ir`] | the LLVM IR layer the passes transform |
//! | [`passes`] | the ILR and TX passes (the paper's contribution) |
//! | [`htm`] | Intel TSX/RTM (read/write sets, aborts, capacity) |
//! | [`vm`] | the Haswell testbed (superscalar cost model + runtime) |
//! | [`workloads`] | Phoenix 2.0 + PARSEC 3.0 benchmark suites |
//! | [`faults`] | the Intel SDE + GDB fault injector |
//! | [`model`] | the PRISM availability model (Figure 5/10) |
//! | [`apps`] | memcached, LogCabin, Apache, LevelDB, SQLite case studies |
//!
//! # Examples
//!
//! Harden a program and watch it survive an injected fault:
//!
//! ```
//! use haft::prelude::*;
//!
//! // A toy program: sum 0..100 into a global, emit the result.
//! let mut m = Module::new("demo");
//! let acc = m.add_global("acc", 8);
//! let mut f = FunctionBuilder::new("fini", &[], None);
//! f.set_non_local();
//! let g = Operand::GlobalAddr(acc);
//! f.counted_loop(f.iconst(Ty::I64, 0), f.iconst(Ty::I64, 100), |b, i| {
//!     let cur = b.load(Ty::I64, g);
//!     let nxt = b.add(Ty::I64, cur, i);
//!     b.store(Ty::I64, nxt, g);
//! });
//! let v = f.load(Ty::I64, g);
//! f.emit_out(Ty::I64, v);
//! f.ret(None);
//! m.push_func(f.finish());
//!
//! // Harden with ILR + TX and run with a fault injected mid-trace.
//! let hardened = harden(&m, &HardenConfig::haft());
//! let spec = RunSpec { fini: Some("fini"), ..Default::default() };
//! let clean = Vm::run(&hardened, VmConfig::default(), spec);
//! let faulty = Vm::run(
//!     &hardened,
//!     VmConfig {
//!         fault: Some(FaultPlan { occurrence: clean.register_writes / 2, xor_mask: 0x40 }),
//!         ..Default::default()
//!     },
//!     spec,
//! );
//! assert_eq!(faulty.output, clean.output, "HAFT recovered the fault");
//! ```

pub use haft_apps as apps;
pub use haft_faults as faults;
pub use haft_htm as htm;
pub use haft_ir as ir;
pub use haft_model as model;
pub use haft_passes as passes;
pub use haft_vm as vm;
pub use haft_workloads as workloads;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use haft_faults::{run_campaign, CampaignConfig, CampaignReport, Outcome};
    pub use haft_ir::builder::FunctionBuilder;
    pub use haft_ir::inst::{BinOp, CmpOp, Op, Operand};
    pub use haft_ir::module::Module;
    pub use haft_ir::types::Ty;
    pub use haft_ir::verify::verify_module;
    pub use haft_model::{HaftChain, SystemKind};
    pub use haft_passes::{harden, HardenConfig, IlrConfig, OptLevel, TxConfig};
    pub use haft_vm::{FaultPlan, RunOutcome, RunSpec, Vm, VmConfig};
    pub use haft_workloads::{all_workloads, workload_by_name, Scale, Workload};
}
