//! HAFT — Hardware-Assisted Fault Tolerance.
//!
//! A from-scratch Rust reproduction of *"HAFT: Hardware-assisted Fault
//! Tolerance"* (Kuvaiskii, Faqeh, Bhatotia, Felber, Fetzer — EuroSys
//! 2016): a compiler-based technique that protects unmodified
//! multithreaded programs against transient CPU faults by combining
//! **instruction-level redundancy** (ILR — a duplicated shadow data flow
//! with checks) for detection with **hardware-transactional-memory
//! rollback** (TX — whole-program transactification over a TSX-like HTM)
//! for recovery.
//!
//! The workspace contains every substrate the paper depends on, built
//! from scratch:
//!
//! | Crate | Paper counterpart |
//! |---|---|
//! | [`ir`] | the LLVM IR layer the passes transform |
//! | [`passes`] | the ILR and TX passes (the paper's contribution) |
//! | [`htm`] | Intel TSX/RTM (read/write sets, aborts, capacity) |
//! | [`vm`] | the Haswell testbed (superscalar cost model + runtime) |
//! | [`workloads`] | Phoenix 2.0 + PARSEC 3.0 benchmark suites |
//! | [`faults`] | the Intel SDE + GDB fault injector |
//! | [`model`] | the PRISM availability model (Figure 5/10) |
//! | [`apps`] | memcached, LogCabin, Apache, LevelDB, SQLite case studies |
//! | [`serve`] | the YCSB client cluster: sharded serving, tail latency, availability |
//! | [`runtime`] | the multi-core deployment: shard actors on a work-stealing thread pool |
//! | [`trace`] | the observability layer: trace events, Perfetto export, unified metrics |
//!
//! # Examples
//!
//! Harden a program with the [`Experiment`] pipeline and watch it survive
//! an injected fault:
//!
//! ```
//! use haft::prelude::*;
//!
//! // A toy program: sum 0..100 into a global, emit the result.
//! let mut m = Module::new("demo");
//! let acc = m.add_global("acc", 8);
//! let mut f = FunctionBuilder::new("fini", &[], None);
//! f.set_non_local();
//! let g = Operand::GlobalAddr(acc);
//! f.counted_loop(f.iconst(Ty::I64, 0), f.iconst(Ty::I64, 100), |b, i| {
//!     let cur = b.load(Ty::I64, g);
//!     let nxt = b.add(Ty::I64, cur, i);
//!     b.store(Ty::I64, nxt, g);
//! });
//! let v = f.load(Ty::I64, g);
//! f.emit_out(Ty::I64, v);
//! f.ret(None);
//! m.push_func(f.finish());
//!
//! // One experiment: harden with ILR + TX, run clean, then re-run with a
//! // fault injected mid-trace.
//! let exp = Experiment::new(&m)
//!     .harden(HardenConfig::haft())
//!     .spec(RunSpec { fini: Some("fini"), ..Default::default() });
//! let clean = exp.run();
//! let faulty = exp.run_with_fault(FaultPlan {
//!     occurrence: clean.run.register_writes / 2,
//!     xor_mask: 0x40,
//! });
//! assert_eq!(faulty.run.output, clean.run.output, "HAFT recovered the fault");
//!
//! // And the variant grid: HAFT vs the unprotected baseline.
//! let report = exp.compare(&[HardenConfig::haft()]);
//! assert!(report.outputs_agree());
//! assert!(report.overhead("HAFT").unwrap() > 1.0, "redundancy is not free");
//! ```
//!
//! # Migrating from `harden` + `Vm::run`
//!
//! Pre-`Experiment` code wired the stages by hand:
//!
//! ```text
//! let hardened = harden(&m, &HardenConfig::haft());          // deprecated shim
//! let r = Vm::run(&hardened, VmConfig::default(), spec);
//! let rep = run_campaign(&hardened, spec, &campaign_cfg);
//! ```
//!
//! The one-front-door equivalents:
//!
//! ```text
//! let exp = Experiment::new(&m).harden(HardenConfig::haft()).spec(spec);
//! let v = exp.run();                       // v.run is the old RunResult
//! let c = exp.campaign(campaign_cfg);      // c.campaign has the histogram
//! ```
//!
//! Direct pass application (`harden`) remains available as a compat shim
//! over [`passes::PassManager`], which is also the extension point for
//! custom [`passes::Pass`] sequences.
//!
//! # Hardening backends
//!
//! Two strategies plug into the same pipeline via
//! [`passes::Backend`]: the paper's detect-and-rollback HAFT
//! (`Backend::IlrTx`, the default) and the Elzar-style
//! triplicate-and-vote TMR (`Backend::Tmr`), which masks faults in place
//! with no transactions. `Experiment::backend(Backend::Tmr)` selects the
//! full-strength preset, and `compare` races the two in one report:
//!
//! ```text
//! let report = Experiment::workload(&w)
//!     .compare(&[HardenConfig::haft(), HardenConfig::tmr()]);
//! // report.overhead("HAFT") vs report.overhead("TMR")
//! ```

pub mod eval;
pub mod experiment;

pub use experiment::{Experiment, ExperimentReport, VariantReport};

pub use haft_apps as apps;
pub use haft_faults as faults;
pub use haft_htm as htm;
pub use haft_ir as ir;
pub use haft_model as model;
pub use haft_passes as passes;
pub use haft_runtime as runtime;
pub use haft_serve as serve;
pub use haft_trace as trace;
pub use haft_vm as vm;
pub use haft_workloads as workloads;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use crate::experiment::{Experiment, ExperimentReport, VariantReport};
    pub use haft_faults::{
        run_campaign, CampaignConfig, CampaignReport, ForensicsSummary, Group, LatencyHistogram,
        Outcome, SiteStats,
    };
    pub use haft_ir::builder::FunctionBuilder;
    pub use haft_ir::inst::{BinOp, CmpOp, Op, Operand};
    pub use haft_ir::module::Module;
    pub use haft_ir::types::Ty;
    pub use haft_ir::verify::verify_module;
    pub use haft_model::{HaftChain, SystemKind};
    #[allow(deprecated)]
    pub use haft_passes::harden;
    pub use haft_passes::{
        Backend, HardenConfig, IlrConfig, OptLevel, Pass, PassManager, PassStats, TmrConfig,
        TxConfig,
    };
    pub use haft_serve::{
        ArrivalMode, FaultLoad, FaultReport, FaultTelemetry, LatencyStats, RouterPolicy, SagaLoad,
        ServeConfig, ServeMode, ServiceReport, ShardStats, WallReport,
    };
    pub use haft_trace::{validate_chrome_trace, MetricsSnapshot, TraceBuf, TraceEvent};
    pub use haft_vm::{
        CycleProfile, Engine, FaultDetector, FaultPlan, FaultSite, Forensics, ProfileCell,
        RunOutcome, RunResult, RunSpec, Vm, VmConfig,
    };
    pub use haft_workloads::{all_workloads, workload_by_name, Scale, Workload};
}
