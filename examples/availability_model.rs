//! Evaluate the Figure 5 availability model at a chosen fault rate.
//!
//! Run with:
//! `cargo run --release -p haft --example availability_model [faults_per_second]`

use haft::prelude::*;

fn main() {
    let rate: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.01);
    const HOUR: f64 = 3600.0;
    println!("fault rate: {rate} faults/second, horizon: 1 hour\n");
    println!("{:<8}{:>14}{:>14}", "system", "available", "corrupted");
    for (label, kind) in
        [("native", SystemKind::Native), ("ILR", SystemKind::Ilr), ("HAFT", SystemKind::Haft)]
    {
        let p = HaftChain::paper(kind).evaluate(rate, HOUR);
        println!("{:<8}{:>13.2}%{:>13.2}%", label, p.availability * 100.0, p.corruption * 100.0);
    }
    println!(
        "\nRecovery rates: manual 6 h, reboot 10 s, transactional 2.5 µs \
         (paper §5.5); probabilities from Table 4."
    );
}
