//! Run a paper-style fault-injection campaign over one benchmark and
//! print the Table 1 outcome distribution for native, ILR, and HAFT —
//! plus the forensics view: how long each fault survived before a
//! detector fired, and which sites are most vulnerable.
//!
//! Run with:
//! `cargo run --release -p haft --example fault_injection_campaign [bench] [injections]`

use haft::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bench = args.get(1).map(String::as_str).unwrap_or("linearreg");
    let injections: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(200);

    let w = workload_by_name(bench, Scale::Small)
        .unwrap_or_else(|| panic!("unknown benchmark {bench}"));
    println!("campaign: {bench}, {injections} injections per configuration\n");

    let mut haft_forensics: Option<ForensicsSummary> = None;
    for (label, hc) in [
        ("native", HardenConfig::native()),
        ("ILR   ", HardenConfig::ilr_only()),
        ("HAFT  ", HardenConfig::haft()),
    ] {
        let v = Experiment::workload(&w)
            .harden(hc)
            .vm(VmConfig { n_threads: 2, max_instructions: 200_000_000, ..Default::default() })
            .campaign(CampaignConfig {
                injections,
                seed: 2016,
                forensics: true,
                ..Default::default()
            });
        let report = v.campaign.unwrap();
        println!("{label} {}", report.summary());
        if label.trim() == "HAFT" {
            haft_forensics = report.forensics.clone();
        }
    }
    println!(
        "\nPaper reference (suite means): native SDC 26.2%, ILR SDC 0.8% \
         (75% fail-stop), HAFT 91.2% correct with SDC 1.1%."
    );

    let fx = haft_forensics.expect("forensics-enabled campaign records");

    // Detection latency: dynamic instructions between the bit flip and
    // the detector that ended its window of vulnerability.
    println!("\nHAFT detection latency (dynamic instructions from flip to detector):");
    for d in FaultDetector::ALL {
        let h = fx.detector_histogram(d);
        if h.count == 0 {
            continue;
        }
        println!(
            "  {:<14} count {:>4}  mean {:>8.1}  p90 {:>6}  max {:>8}",
            d.label(),
            h.count,
            h.mean(),
            h.percentile(90.0),
            h.max
        );
    }

    println!("\ntop 5 vulnerable sites (AVF-ranked, function · op-class):");
    for (key, s) in fx.top_sites(5) {
        println!(
            "  {:<32} injections {:>4}  corrupted {:>3}  crashed {:>3}  AVF {:>5.1}%",
            format!("{} · {}", key.0, key.1),
            s.injections,
            s.corrupted,
            s.crashed,
            s.avf()
        );
    }

    // The same aggregate as the unified metrics registry exports it
    // (`faults.*` dotted names) — what dashboards and CI grep for.
    let mut m = MetricsSnapshot::new();
    fx.metrics_into(&mut m);
    println!("\nmetrics (stable names):");
    for name in ["faults.forensics.fired", "faults.detect_latency.ilr.mean_insts"] {
        println!("  {name} = {:.2}", m.get(name).unwrap());
    }
}
