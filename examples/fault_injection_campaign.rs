//! Run a paper-style fault-injection campaign over one benchmark and
//! print the Table 1 outcome distribution for native, ILR, and HAFT.
//!
//! Run with:
//! `cargo run --release -p haft --example fault_injection_campaign [bench] [injections]`

use haft::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bench = args.get(1).map(String::as_str).unwrap_or("linearreg");
    let injections: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(200);

    let w = workload_by_name(bench, Scale::Small)
        .unwrap_or_else(|| panic!("unknown benchmark {bench}"));
    println!("campaign: {bench}, {injections} injections per configuration\n");

    for (label, hc) in [
        ("native", HardenConfig::native()),
        ("ILR   ", HardenConfig::ilr_only()),
        ("HAFT  ", HardenConfig::haft()),
    ] {
        let v = Experiment::workload(&w)
            .harden(hc)
            .vm(VmConfig { n_threads: 2, max_instructions: 200_000_000, ..Default::default() })
            .campaign(CampaignConfig { injections, seed: 2016, ..Default::default() });
        println!("{label} {}", v.campaign.unwrap().summary());
    }
    println!(
        "\nPaper reference (suite means): native SDC 26.2%, ILR SDC 0.8% \
         (75% fail-stop), HAFT 91.2% correct with SDC 1.1%."
    );
}
