//! The paper's §6.1 headline: HAFT's lock elision makes the hardened
//! lock-based memcached as fast as the native one.
//!
//! Run with: `cargo run --release -p haft --example memcached_elision`

use haft::apps::{memcached, KvSync, WorkloadMix};
use haft::prelude::*;

fn main() {
    let threads = 8;
    let w = memcached(WorkloadMix::A, KvSync::Lock, Scale::Large);
    let exp = Experiment::workload(&w).threads(threads);

    let native = exp.run().expect_completed("native");
    let with_elision = exp
        .clone()
        .harden(HardenConfig::haft_with_elision())
        .lock_elision(true)
        .run()
        .expect_completed("HAFT-lock with elision");
    let without = exp
        .clone()
        .harden(HardenConfig::haft())
        .run()
        .expect_completed("HAFT-lock without elision");

    assert_eq!(native.output, with_elision.output);
    assert_eq!(native.output, without.output);

    let tp = |r: &RunResult| 24_000.0 / (r.wall_cycles as f64 / 2.0e9) / 1e6;
    println!("memcached, YCSB A, {threads} threads (M ops/s at 2 GHz):");
    println!("  native-lock          {:>8.3}", tp(&native));
    println!("  HAFT-lock (elision)  {:>8.3}", tp(&with_elision));
    println!("  HAFT-lock-noelision  {:>8.3}", tp(&without));
    println!(
        "\nelision recovers {:.0}% of the hardening slowdown (paper: ~30% gain, on par with native)",
        100.0 * (1.0
            - (native.wall_cycles as f64 / with_elision.wall_cycles as f64
                - native.wall_cycles as f64 / without.wall_cycles as f64)
                .abs()
                .min(1.0))
    );
}
