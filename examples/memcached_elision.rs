//! The paper's §6.1 headline: HAFT's lock elision makes the hardened
//! lock-based memcached as fast as the native one.
//!
//! Run with: `cargo run --release -p haft --example memcached_elision`

use haft::apps::{memcached, KvSync, WorkloadMix};
use haft::prelude::*;

fn main() {
    let threads = 8;
    let w = memcached(WorkloadMix::A, KvSync::Lock, Scale::Large);
    let spec = w.run_spec();

    let native = Vm::run(&w.module, VmConfig { n_threads: threads, ..Default::default() }, spec);

    let hardened_elision = harden(&w.module, &HardenConfig::haft_with_elision());
    let with_elision = Vm::run(
        &hardened_elision,
        VmConfig { n_threads: threads, lock_elision: true, ..Default::default() },
        spec,
    );

    let hardened_plain = harden(&w.module, &HardenConfig::haft());
    let without =
        Vm::run(&hardened_plain, VmConfig { n_threads: threads, ..Default::default() }, spec);

    assert_eq!(native.output, with_elision.output);
    assert_eq!(native.output, without.output);

    let tp = |r: &haft::vm::RunResult| 24_000.0 / (r.wall_cycles as f64 / 2.0e9) / 1e6;
    println!("memcached, YCSB A, {threads} threads (M ops/s at 2 GHz):");
    println!("  native-lock          {:>8.3}", tp(&native));
    println!("  HAFT-lock (elision)  {:>8.3}", tp(&with_elision));
    println!("  HAFT-lock-noelision  {:>8.3}", tp(&without));
    println!(
        "\nelision recovers {:.0}% of the hardening slowdown (paper: ~30% gain, on par with native)",
        100.0 * (1.0
            - (native.wall_cycles as f64 / with_elision.wall_cycles as f64
                - native.wall_cycles as f64 / without.wall_cycles as f64)
                .abs()
                .min(1.0))
    );
}
