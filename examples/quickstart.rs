//! Quickstart: harden a small program with HAFT via the `Experiment`
//! pipeline and demonstrate fault detection and recovery.
//!
//! Run with: `cargo run --release -p haft --example quickstart`

use haft::prelude::*;

fn main() {
    // 1. Build a program against the IR: a parallel dot-product.
    let mut m = Module::new("quickstart");
    let xs = m.add_global_init("xs", (0..512u64).flat_map(|i| (i % 97).to_le_bytes()).collect());
    let ys = m.add_global_init("ys", (0..512u64).flat_map(|i| (i % 89).to_le_bytes()).collect());
    let partial = m.add_global("partial", 16 * 64);

    let mut w = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
    w.set_non_local();
    let tid = w.param(0);
    let nt = w.param(1);
    // Each thread handles the slice [tid*512/n, (tid+1)*512/n).
    let total = w.iconst(Ty::I64, 512);
    let t0 = w.mul(Ty::I64, tid, total);
    let lo = w.bin(BinOp::SDiv, Ty::I64, t0, nt);
    let tid1 = w.add(Ty::I64, tid, w.iconst(Ty::I64, 1));
    let t1 = w.mul(Ty::I64, tid1, total);
    let hi = w.bin(BinOp::SDiv, Ty::I64, t1, nt);
    let off = w.mul(Ty::I64, tid, w.iconst(Ty::I64, 64));
    let cell = w.add(Ty::I64, Operand::GlobalAddr(partial), off);
    w.counted_loop(lo, hi, |b, i| {
        let xp = b.gep(Operand::GlobalAddr(xs), i, 8, 0);
        let x = b.load(Ty::I64, xp);
        let yp = b.gep(Operand::GlobalAddr(ys), i, 8, 0);
        let y = b.load(Ty::I64, yp);
        let p = b.mul(Ty::I64, x, y);
        let cur = b.load(Ty::I64, cell);
        let nxt = b.add(Ty::I64, cur, p);
        b.store(Ty::I64, nxt, cell);
    });
    w.ret(None);
    m.push_func(w.finish());

    let mut f = FunctionBuilder::new("fini", &[], None);
    f.set_non_local();
    let acc = f.alloc(f.iconst(Ty::I64, 8));
    f.store(Ty::I64, f.iconst(Ty::I64, 0), acc);
    f.counted_loop(f.iconst(Ty::I64, 0), f.iconst(Ty::I64, 16), |b, t| {
        let cp = b.gep(Operand::GlobalAddr(partial), t, 64, 0);
        let v = b.load(Ty::I64, cp);
        let cur = b.load(Ty::I64, acc);
        let nxt = b.add(Ty::I64, cur, v);
        b.store(Ty::I64, nxt, acc);
    });
    let out = f.load(Ty::I64, acc);
    f.emit_out(Ty::I64, out);
    f.ret(None);
    m.push_func(f.finish());
    verify_module(&m).expect("valid IR");

    // 2. One experiment describes the whole pipeline: module, hardening,
    //    VM shape, and entry points.
    let exp = Experiment::new(&m).harden(HardenConfig::haft()).threads(4).spec(RunSpec {
        worker: Some("worker"),
        fini: Some("fini"),
        ..Default::default()
    });

    // 3. Side-by-side variant comparison: native vs full HAFT.
    let report = exp.compare(&[HardenConfig::haft()]);
    assert!(report.outputs_agree(), "hardening must preserve semantics");
    let native = report.baseline();
    let haft = report.variant("HAFT").unwrap();
    println!(
        "native instructions: {:>6}   hardened: +{} (ILR {:+}, TX {:+})",
        m.total_inst_count(),
        haft.pass_stats.total_added(),
        haft.pass_stats.added_by("ilr").unwrap(),
        haft.pass_stats.added_by("tx").unwrap(),
    );
    println!("dot product = {}", native.run.output[0]);
    println!(
        "overhead: {:.2}x   transactions committed: {}   coverage: {:.1}%",
        report.overhead("HAFT").unwrap(),
        haft.run.htm.commits,
        haft.run.htm.coverage_pct()
    );

    // 4. Inject a single-event upset into every 50th instruction of the
    //    trace and tally what HAFT does with it.
    let clean = haft.run.clone();
    let (mut corrected, mut masked, mut detected, mut sdc) = (0, 0, 0, 0);
    let mut occ = 0;
    while occ < clean.register_writes {
        let r = exp.run_with_fault(FaultPlan { occurrence: occ, xor_mask: 0x80 }).run;
        match r.outcome {
            RunOutcome::Detected => detected += 1,
            RunOutcome::Completed if r.output != clean.output => sdc += 1,
            RunOutcome::Completed if r.recoveries > 0 => corrected += 1,
            RunOutcome::Completed => masked += 1,
            _ => detected += 1,
        }
        occ += 50;
    }
    println!(
        "fault sweep: corrected {corrected}, masked {masked}, fail-stopped {detected}, SDC {sdc}"
    );
}
