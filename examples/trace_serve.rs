//! Traces a native serving run and validates the exported Chrome trace.
//!
//! Runs the hardened KV shard under saga traffic on the work-stealing
//! native runtime with `Experiment::trace` attached, then re-reads the
//! emitted file through `validate_chrome_trace` and prints the event
//! census. CI runs this as the trace smoke test; locally, load the
//! printed path in <https://ui.perfetto.dev> to browse the timeline —
//! batch/VM/HTM activity on the virtual clock, pool scheduling on the
//! wall clock.
//!
//! Run with: `cargo run --example trace_serve`

use haft::apps::{kv_shard, KvSync};
use haft::prelude::*;

fn main() {
    let w = kv_shard(KvSync::Atomics);
    let cfg = ServeConfig {
        requests: 400,
        shards: 3,
        sagas: Some(SagaLoad { every: 3, span: 3 }),
        ..Default::default()
    };
    let path = std::env::temp_dir().join("haft-trace-serve.json");

    let report = Experiment::workload(&w)
        .harden(HardenConfig::haft())
        .trace(&path)
        .serve_in(ServeMode::Native { workers: 3 }, &cfg);
    println!("{}", report.summary());

    // Read back what was written and prove it is a well-formed,
    // non-empty Chrome trace that covers every subsystem.
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let counts = validate_chrome_trace(&text).expect("trace must validate");
    println!("\ntrace: {} ({} bytes)", path.display(), text.len());
    for (cat, n) in &counts {
        println!("  {cat:<8} {n:>6} events");
    }
    let cats: Vec<&str> = counts.iter().map(|(c, _)| c.as_str()).collect();
    for required in ["vm", "htm", "serve", "pool", "saga"] {
        assert!(cats.contains(&required), "missing `{required}` events: {cats:?}");
    }
    println!("\nload it at https://ui.perfetto.dev to browse the timeline");
}
