//! Minimal, offline, API-compatible stand-in for the `criterion` crate.
//!
//! Implements just the surface this workspace's `micro.rs` bench uses:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Each benchmark runs a
//! short warmup, then an adaptive measurement loop, and prints the mean
//! wall-clock time per iteration. No statistics, plots, or baselines.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver handed to each `criterion_group!` target.
pub struct Criterion {
    /// Target wall-clock time spent measuring each benchmark.
    pub measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measurement_time: Duration::from_millis(200) }
    }
}

impl Criterion {
    /// Runs one named benchmark closure and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: 0, elapsed: Duration::ZERO, budget: self.measurement_time };
        f(&mut b);
        let mean = if b.iters > 0 { b.elapsed.as_nanos() as f64 / b.iters as f64 } else { 0.0 };
        println!("{id:<40} {:>12} iters   mean {:>12.1} ns", b.iters, mean);
        self
    }
}

/// Timing context passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Times `f`, running it repeatedly until the measurement budget is spent.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warmup, and a floor so ultra-fast bodies still amortize timer cost.
        for _ in 0..3 {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            for _ in 0..16 {
                black_box(f());
            }
            iters += 16;
            if start.elapsed() >= self.budget {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `fn main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
