//! Minimal, offline, API-compatible stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's surface this workspace uses (see
//! `shims/README.md`): the [`proptest!`] test macro, [`prop_oneof!`],
//! panic-based `prop_assert*` macros, the [`strategy::Strategy`] trait with
//! `prop_map`, `any::<T>()`, `Just`, integer-range and tuple strategies, and
//! [`collection::vec`]. Generation is driven by a deterministic seeded PRNG
//! (seeded from the test name, overridable via `PROPTEST_SEED`); there is no
//! shrinking — failing cases print their fully generated inputs instead.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The imports a proptest-based test file conventionally glob-includes.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of upstream's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the upstream form used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(any::<u8>(), 1..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($config:expr;) => {};
    ($config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let mut case_desc = String::new();
                $(case_desc.push_str(&format!(
                    "    {} = {:?}\n", stringify!($arg), &$arg));)+
                match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(move || $body)) {
                    Ok(()) => {}
                    Err(payload) => {
                        eprintln!(
                            "proptest: {} failed at case {}/{} with inputs:\n{}",
                            stringify!($name), case + 1, config.cases, case_desc,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_items!($config; $($rest)*);
    };
}

/// Uniformly picks one of several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Panic-based stand-in for proptest's `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Panic-based stand-in for proptest's `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Panic-based stand-in for proptest's `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
