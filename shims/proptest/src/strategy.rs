//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// A recipe for generating values of one type. Unlike upstream proptest this
/// shim has no value trees or shrinking — `generate` draws a value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (upstream's `prop_map`).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<V: Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Boxes a strategy for storage in heterogeneous collections ([`Union`]).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between same-valued strategies (built by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V: Debug> Union<V> {
    /// Builds a union over `arms`; panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy (upstream's `Arbitrary`).
pub trait Arbitrary: Debug + Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for the full value space of `T` (upstream's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                (self.start as i128 + (rng.below(span as u64) as i128)) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u128;
                if span > u64::MAX as u128 {
                    rng.next_u64() as $t
                } else {
                    (lo + rng.below(span as u64) as i128) as $t
                }
            }
        }

        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).generate(rng)
            }
        }
    )+};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident.$idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
}
