//! Config and deterministic PRNG behind the [`proptest!`](crate::proptest) macro.

/// Per-block test configuration (upstream's `ProptestConfig`, cases only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases each property runs against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64 generator seeded from the test name, so runs are
/// reproducible; set `PROPTEST_SEED` to explore a different stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator for the named test.
    pub fn for_test(name: &str) -> Self {
        let mut seed = match std::env::var("PROPTEST_SEED") {
            Ok(v) => v.parse::<u64>().unwrap_or(0x9e37_79b9_7f4a_7c15),
            Err(_) => 0x9e37_79b9_7f4a_7c15,
        };
        for b in name.bytes() {
            seed = seed.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
        }
        TestRng { state: seed }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}
