//! Differential harness pinning the fused engine to the reference
//! interpreter, bit for bit.
//!
//! [`Engine::Fused`] is pure mechanics — pre-decoded dispatch, fused
//! super-instructions, pooled register windows — and must never change a
//! single observable. These tests enforce that at the strongest level
//! available: **full [`RunResult`] equality** (outcome, output, wall and
//! per-phase cycles, CPU cycles, instruction and register-write counts,
//! the complete HTM statistics block, detections, recoveries,
//! `corrected_by_vote`, `corrected_by_checksum`, mispredicts) across a
//! grid of generated programs, hardening backends, transaction
//! thresholds, and fault injections. Any divergence — one cycle, one
//! abort, one vote, one checksum correction — fails.

use std::collections::BTreeMap;

use haft::prelude::*;
use proptest::prelude::*;

/// A tiny random program description (the same shape `properties.rs`
/// uses: enough to exercise ALU chains, memory, and branches — the op
/// mix the fuser targets).
#[derive(Clone, Debug)]
enum Step {
    Add(u8, u8),
    Mul(u8, u8),
    Xor(u8, u8),
    StoreLoad(u8),
    Branchy(u8),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Step::Add(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Step::Mul(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Step::Xor(a, b)),
        any::<u8>().prop_map(Step::StoreLoad),
        any::<u8>().prop_map(Step::Branchy),
    ]
}

/// Builds a runnable module from the step list; a rolling value window
/// keeps every generated operand defined.
fn build_program(steps: &[Step]) -> Module {
    let mut m = Module::new("diff");
    let scratch = m.add_global("scratch", 256);
    let g = Operand::GlobalAddr(scratch);
    let mut f = FunctionBuilder::new("fini", &[], None);
    f.set_non_local();
    let mut vals = vec![f.mov(Ty::I64, f.iconst(Ty::I64, 0x1234_5678))];
    let pick = |vals: &Vec<haft::ir::function::ValueId>, i: u8| vals[i as usize % vals.len()];
    for s in steps {
        let v = match s {
            Step::Add(a, b) => {
                let (x, y) = (pick(&vals, *a), pick(&vals, *b));
                f.add(Ty::I64, x, y)
            }
            Step::Mul(a, b) => {
                let (x, y) = (pick(&vals, *a), pick(&vals, *b));
                f.mul(Ty::I64, x, y)
            }
            Step::Xor(a, b) => {
                let (x, y) = (pick(&vals, *a), pick(&vals, *b));
                f.bin(BinOp::Xor, Ty::I64, x, y)
            }
            Step::StoreLoad(a) => {
                let x = pick(&vals, *a);
                let slot = f.bin(BinOp::And, Ty::I64, x, f.iconst(Ty::I64, 24));
                let addr = f.add(Ty::I64, g, slot);
                f.store(Ty::I64, x, addr);
                f.load(Ty::I64, addr)
            }
            Step::Branchy(a) => {
                let x = pick(&vals, *a);
                let c = f.cmp(CmpOp::SGt, Ty::I64, x, f.iconst(Ty::I64, 0));
                f.if_then_else(
                    Ty::I64,
                    c,
                    |b| {
                        let t = b.add(Ty::I64, x, b.iconst(Ty::I64, 1));
                        t.into()
                    },
                    |b| {
                        let t = b.bin(BinOp::Xor, Ty::I64, x, b.iconst(Ty::I64, -1));
                        t.into()
                    },
                )
            }
        };
        vals.push(v);
        if vals.len() > 8 {
            vals.remove(0);
        }
    }
    let last = *vals.last().unwrap();
    f.emit_out(Ty::I64, last);
    f.ret(None);
    m.push_func(f.finish());
    m
}

fn fini_spec() -> RunSpec<'static> {
    RunSpec { fini: Some("fini"), ..Default::default() }
}

/// Runs the experiment under both engines and returns the two results.
fn run_both(exp: &Experiment<'_>) -> (RunResult, RunResult) {
    let interp = exp.clone().engine(Engine::Interp).run().run;
    let fused = exp.clone().engine(Engine::Fused).run().run;
    (interp, fused)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The core differential property: for arbitrary generated programs
    /// under every backend (native, HAFT, TMR) and across transaction
    /// thresholds, the two engines return *equal* `RunResult`s.
    #[test]
    fn engines_agree_on_generated_programs(
        steps in proptest::collection::vec(step_strategy(), 1..32),
        seed in any::<u64>(),
    ) {
        let m = build_program(&steps);
        let configs = [
            HardenConfig::native(),
            HardenConfig::haft(),
            HardenConfig::tmr(),
            HardenConfig::abft(),
        ];
        for hc in &configs {
            for &threshold in &[250u64, 1000, 4000] {
                let exp = Experiment::new(&m)
                    .harden(hc.clone())
                    .spec(fini_spec())
                    .tx_threshold(threshold)
                    .seed(seed);
                let (interp, fused) = run_both(&exp);
                prop_assert_eq!(
                    &interp, &fused,
                    "engines diverge: backend={} threshold={}", hc.label(), threshold
                );
            }
        }
    }

    /// Fault injections land on the same dynamic register write in both
    /// engines, so the whole faulted result — not just the outcome —
    /// must match too. Runs under both HAFT and ABFT so the checksum
    /// verify-and-correct path is differentially pinned too.
    #[test]
    fn engines_agree_under_fault_injection(
        steps in proptest::collection::vec(step_strategy(), 1..24),
        occ_seed in any::<u64>(),
        mask in 1u64..,
    ) {
        let m = build_program(&steps);
        for hc in [HardenConfig::haft(), HardenConfig::abft()] {
            let label = hc.label();
            let exp = Experiment::new(&m).harden(hc).spec(fini_spec());
            let (clean_i, clean_f) = run_both(&exp);
            prop_assert_eq!(&clean_i, &clean_f, "{}: clean runs diverge", label);
            let occurrence = occ_seed % clean_i.register_writes.max(1);
            let plan = FaultPlan { occurrence, xor_mask: mask };
            let fi = exp.clone().engine(Engine::Interp).run_with_fault(plan).run;
            let ff = exp.clone().engine(Engine::Fused).run_with_fault(plan).run;
            prop_assert_eq!(&fi, &ff, "{}: faulted runs diverge at occurrence {}", label, occurrence);
        }
    }
}

/// The named-workload grid: real benchmark programs (parallel worker
/// phases, transactions, lock traffic) under both engines, across
/// backends and thresholds. Full `RunResult` equality, per cell.
#[test]
fn engines_agree_on_workloads() {
    for name in ["linearreg", "histogram"] {
        let w = workload_by_name(name, Scale::Small).unwrap();
        let configs = [
            HardenConfig::native(),
            HardenConfig::haft(),
            HardenConfig::tmr(),
            HardenConfig::abft(),
        ];
        for hc in &configs {
            for &threshold in &[250u64, 1000] {
                let exp =
                    Experiment::workload(&w).harden(hc.clone()).threads(2).tx_threshold(threshold);
                let (interp, fused) = run_both(&exp);
                assert_eq!(
                    interp,
                    fused,
                    "engines diverge: workload={name} backend={} threshold={threshold}",
                    hc.label()
                );
            }
        }
    }
}

/// The 23-point fault sweep from `quickstart_smoke.rs`, run under both
/// engines and both recovery backends (HAFT rollback, ABFT checksum):
/// every injection point must produce the *same* result, and therefore
/// the same Table 1 outcome histogram.
#[test]
fn fault_sweep_outcome_histograms_match() {
    let w = workload_by_name("linearreg", Scale::Small).unwrap();
    for hc in [HardenConfig::haft(), HardenConfig::abft()] {
        let label = hc.label();
        let exp = Experiment::workload(&w).harden(hc).threads(2);
        let (clean_i, clean_f) = run_both(&exp);
        assert_eq!(clean_i, clean_f, "{label}: clean runs diverge");

        let mut histogram_i: BTreeMap<String, u64> = BTreeMap::new();
        let mut histogram_f: BTreeMap<String, u64> = BTreeMap::new();
        let mut corrected = 0;
        let step = (clean_i.register_writes / 23).max(1);
        for occurrence in (0..clean_i.register_writes).step_by(step as usize) {
            let plan = FaultPlan { occurrence, xor_mask: 0x40 };
            let ri = exp.clone().engine(Engine::Interp).run_with_fault(plan).run;
            let rf = exp.clone().engine(Engine::Fused).run_with_fault(plan).run;
            assert_eq!(ri, rf, "{label}: faulted runs diverge at occurrence {occurrence}");
            corrected += ri.corrected_by_checksum;
            *histogram_i.entry(format!("{:?}", ri.outcome)).or_default() += 1;
            *histogram_f.entry(format!("{:?}", rf.outcome)).or_default() += 1;
        }
        // Implied by the per-point equality above, but assert the
        // aggregate the paper actually reports: identical outcome
        // histograms.
        assert_eq!(histogram_i, histogram_f, "{label}: outcome histograms diverge");
        assert!(histogram_i.values().sum::<u64>() >= 23, "{label}: sweep must cover 23 points");
        if label == "HAFT" {
            assert_eq!(corrected, 0, "rollback backend must never fire a checksum");
        }
    }
}
