//! Cross-crate integration tests: the full pipeline from IR through
//! hardening, execution, fault injection, and the availability model,
//! driven through the facade's `Experiment` API.

use haft::prelude::*;

/// Hardening must preserve semantics for every benchmark and every pass
/// configuration the evaluation uses — one `compare` per benchmark.
#[test]
fn every_config_preserves_semantics_on_sample_benchmarks() {
    let spec_names = ["histogram", "linearreg", "dedup"];
    for name in spec_names {
        let w = workload_by_name(name, Scale::Small).unwrap();
        let report = Experiment::workload(&w).threads(2).compare(&[
            HardenConfig::ilr_only(),
            HardenConfig::tx_only(),
            HardenConfig::haft(),
            HardenConfig::at_opt_level(OptLevel::None),
            HardenConfig::at_opt_level(OptLevel::SharedMem),
            HardenConfig::at_opt_level(OptLevel::ControlFlow),
            HardenConfig::at_opt_level(OptLevel::LocalCalls),
            HardenConfig::at_opt_level(OptLevel::FaultProp),
        ]);
        assert_eq!(report.variants.len(), 9, "{name}: baseline + 8 variants");
        assert!(report.outputs_agree(), "{name}:\n{}", report.summary());
        // Every hardened variant pays a nonzero instruction cost.
        for v in &report.variants[1..] {
            assert!(v.pass_stats.total_added() > 0, "{name}/{}", v.label);
        }
    }
}

/// The headline reliability result: HAFT turns most would-be corruptions
/// into corrected executions.
#[test]
fn haft_reliability_pipeline() {
    let w = workload_by_name("linearreg", Scale::Small).unwrap();
    let exp = Experiment::workload(&w).vm(VmConfig {
        n_threads: 2,
        max_instructions: 100_000_000,
        ..Default::default()
    });
    let cfg = CampaignConfig { injections: 120, seed: 99, ..Default::default() };
    let native = exp.campaign(cfg.clone()).campaign.unwrap();
    let haft = exp.clone().harden(HardenConfig::haft()).campaign(cfg).campaign.unwrap();

    assert!(
        haft.pct(Outcome::Sdc) < native.pct(Outcome::Sdc),
        "HAFT {} vs native {}",
        haft.summary(),
        native.summary()
    );
    assert!(haft.pct(Outcome::HaftCorrected) > 20.0, "{}", haft.summary());
    // Correct group (masked + corrected) dominates, as in the paper's 91.2%.
    let correct = haft.pct(Outcome::HaftCorrected) + haft.pct(Outcome::Masked);
    assert!(correct > 50.0, "{}", haft.summary());
}

/// Coverage (fraction of cycles in transactions) is high for hardened
/// benchmarks, as in Table 2 (mean 90.2%).
#[test]
fn coverage_is_high_for_protected_benchmarks() {
    for name in ["histogram", "kmeans-ns", "x264"] {
        let w = workload_by_name(name, Scale::Small).unwrap();
        let r = Experiment::workload(&w)
            .harden(HardenConfig::haft())
            .threads(2)
            .tx_threshold(3000)
            .run()
            .expect_completed(name);
        assert!(r.htm.coverage_pct() > 60.0, "{name} coverage {:.1}%", r.htm.coverage_pct());
    }
}

/// Hyper-threading increases abort rates (Table 2, column 4).
#[test]
fn hyperthreading_increases_aborts_for_cache_hungry_kernels() {
    let w = workload_by_name("matrixmul", Scale::Small).unwrap();
    let exp = Experiment::workload(&w).harden(HardenConfig::haft()).vm(VmConfig {
        n_threads: 4,
        tx_threshold: 5000,
        ..Default::default()
    });
    let r_base = exp.run().expect_completed("base");
    let mut smt = VmConfig { n_threads: 4, tx_threshold: 5000, ..Default::default() };
    smt.htm = haft::htm::HtmConfig { smt: true, ..Default::default() };
    let r_smt = exp.clone().vm(smt).run().expect_completed("smt");
    assert!(
        r_smt.htm.environment_aborts() >= r_base.htm.environment_aborts(),
        "smt {} vs base {}",
        r_smt.htm.environment_aborts(),
        r_base.htm.environment_aborts()
    );
}

/// The model and the measured fault probabilities connect: plugging a
/// measured campaign into the chain yields a valid availability point.
#[test]
fn measured_probabilities_feed_the_model() {
    let w = workload_by_name("histogram", Scale::Small).unwrap();
    let rep = Experiment::workload(&w)
        .harden(HardenConfig::haft())
        .vm(VmConfig { n_threads: 2, max_instructions: 100_000_000, ..Default::default() })
        .campaign(CampaignConfig { injections: 60, seed: 4, ..Default::default() })
        .campaign
        .unwrap();
    let probs = haft::model::FaultProbabilities {
        masked: rep.pct(Outcome::Masked) / 100.0,
        sdc: rep.pct(Outcome::Sdc) / 100.0,
        crashed: (rep.pct(Outcome::Hang)
            + rep.pct(Outcome::OsDetected)
            + rep.pct(Outcome::IlrDetected))
            / 100.0,
        haft_correctable: rep.pct(Outcome::HaftCorrected) / 100.0,
    };
    let chain = haft::model::HaftChain { probs, rates: haft::model::RecoveryRates::default() };
    let pt = chain.evaluate(0.01, 3600.0);
    assert!(pt.availability > 0.0 && pt.availability <= 1.0);
    assert!(pt.corruption >= 0.0 && pt.corruption < 1.0);
}

/// The textual IR round-trips through the parser for real benchmark
/// modules, including hardened ones. Pass-inserted instructions make the
/// printed value ids non-sequential, so one parse α-renames them into
/// canonical order; after that the round-trip is the identity, and the
/// reparsed module runs identically.
#[test]
fn printer_parser_roundtrip_on_hardened_module() {
    let w = workload_by_name("histogram", Scale::Small).unwrap();
    let exp = Experiment::workload(&w).harden(HardenConfig::haft()).threads(2);
    let (hardened, _) = exp.build();
    let text = haft::ir::printer::print_module(&hardened);
    let parsed = haft::ir::parser::parse_module(&text).expect("parses");
    verify_module(&parsed).expect("verifies");
    // Canonical fixed point: print(parse(print(parse(x)))) == print(parse(x)).
    let canon = haft::ir::printer::print_module(&parsed);
    let reparsed = haft::ir::parser::parse_module(&canon).expect("reparses");
    assert_eq!(haft::ir::printer::print_module(&reparsed), canon);
    // And it still runs identically: the hardened module through the
    // experiment, the reparsed one through the same VM shape.
    let a = exp.run().expect_completed("hardened");
    let b = Experiment::new(&parsed).spec(w.run_spec()).threads(2).run().expect_completed("parsed");
    assert_eq!(a.output, b.output);
}

/// Lock elision end to end: hardened lock-based code commits transactions
/// instead of serializing on locks.
#[test]
fn lock_elision_reduces_lock_serialization() {
    use haft::apps::{memcached, KvSync, WorkloadMix};
    // Uniform keys (the paper's mcblaster setup): critical sections on
    // distinct buckets almost never conflict, so eliding their locks is a
    // pure win. (Zipf-hot traffic on our deliberately small table makes
    // large elided transactions abort-prone — see EXPERIMENTS.md.)
    let w = memcached(WorkloadMix::Uniform, KvSync::Lock, Scale::Small);
    let exp = Experiment::workload(&w).threads(4).tx_threshold(500);
    let native = exp.run().expect_completed("native");
    let elided = exp
        .clone()
        .harden(HardenConfig::haft_with_elision())
        .lock_elision(true)
        .run()
        .expect_completed("elided");
    assert_eq!(elided.output, native.output);
    assert!(elided.htm.commits > 0);
    // Elision must beat the non-elided hardened build.
    let noelision = exp.clone().harden(HardenConfig::haft()).run().expect_completed("noelision");
    assert!(
        elided.wall_cycles < noelision.wall_cycles,
        "elision {} vs noelision {}",
        elided.wall_cycles,
        noelision.wall_cycles
    );
}
