//! Cross-crate integration tests: the full pipeline from IR through
//! hardening, execution, fault injection, and the availability model.

use haft::prelude::*;

/// Hardening must preserve semantics for every benchmark and every pass
/// configuration the evaluation uses.
#[test]
fn every_config_preserves_semantics_on_sample_benchmarks() {
    let spec_names = ["histogram", "linearreg", "dedup"];
    for name in spec_names {
        let w = workload_by_name(name, Scale::Small).unwrap();
        let cfg = VmConfig { n_threads: 2, ..Default::default() };
        let native = Vm::run(&w.module, cfg.clone(), w.run_spec());
        assert_eq!(native.outcome, RunOutcome::Completed);
        for hc in [
            HardenConfig::ilr_only(),
            HardenConfig::tx_only(),
            HardenConfig::haft(),
            HardenConfig::at_opt_level(OptLevel::None),
            HardenConfig::at_opt_level(OptLevel::SharedMem),
            HardenConfig::at_opt_level(OptLevel::ControlFlow),
            HardenConfig::at_opt_level(OptLevel::LocalCalls),
            HardenConfig::at_opt_level(OptLevel::FaultProp),
        ] {
            let hardened = harden(&w.module, &hc);
            verify_module(&hardened).unwrap_or_else(|e| panic!("{name}: {e:?}"));
            let r = Vm::run(&hardened, cfg.clone(), w.run_spec());
            assert_eq!(r.outcome, RunOutcome::Completed, "{name}");
            assert_eq!(r.output, native.output, "{name} with {hc:?}");
        }
    }
}

/// The headline reliability result: HAFT turns most would-be corruptions
/// into corrected executions.
#[test]
fn haft_reliability_pipeline() {
    let w = workload_by_name("linearreg", Scale::Small).unwrap();
    let cfg = CampaignConfig {
        injections: 120,
        seed: 99,
        vm: VmConfig { n_threads: 2, max_instructions: 100_000_000, ..Default::default() },
        ..Default::default()
    };
    let native = run_campaign(&w.module, w.run_spec(), &cfg);
    let hardened = harden(&w.module, &HardenConfig::haft());
    let haft = run_campaign(&hardened, w.run_spec(), &cfg);

    assert!(
        haft.pct(Outcome::Sdc) < native.pct(Outcome::Sdc),
        "HAFT {} vs native {}",
        haft.summary(),
        native.summary()
    );
    assert!(haft.pct(Outcome::HaftCorrected) > 20.0, "{}", haft.summary());
    // Correct group (masked + corrected) dominates, as in the paper's 91.2%.
    let correct = haft.pct(Outcome::HaftCorrected) + haft.pct(Outcome::Masked);
    assert!(correct > 50.0, "{}", haft.summary());
}

/// Coverage (fraction of cycles in transactions) is high for hardened
/// benchmarks, as in Table 2 (mean 90.2%).
#[test]
fn coverage_is_high_for_protected_benchmarks() {
    for name in ["histogram", "kmeans-ns", "x264"] {
        let w = workload_by_name(name, Scale::Small).unwrap();
        let hardened = harden(&w.module, &HardenConfig::haft());
        let cfg = VmConfig { n_threads: 2, tx_threshold: 3000, ..Default::default() };
        let r = Vm::run(&hardened, cfg, w.run_spec());
        assert!(r.htm.coverage_pct() > 60.0, "{name} coverage {:.1}%", r.htm.coverage_pct());
    }
}

/// Hyper-threading increases abort rates (Table 2, column 4).
#[test]
fn hyperthreading_increases_aborts_for_cache_hungry_kernels() {
    let w = workload_by_name("matrixmul", Scale::Small).unwrap();
    let hardened = harden(&w.module, &HardenConfig::haft());
    let base = VmConfig { n_threads: 4, tx_threshold: 5000, ..Default::default() };
    let r_base = Vm::run(&hardened, base.clone(), w.run_spec());
    let mut smt = base;
    smt.htm = haft::htm::HtmConfig { smt: true, ..Default::default() };
    let r_smt = Vm::run(&hardened, smt, w.run_spec());
    assert!(
        r_smt.htm.environment_aborts() >= r_base.htm.environment_aborts(),
        "smt {} vs base {}",
        r_smt.htm.environment_aborts(),
        r_base.htm.environment_aborts()
    );
}

/// The model and the measured fault probabilities connect: plugging a
/// measured campaign into the chain yields a valid availability point.
#[test]
fn measured_probabilities_feed_the_model() {
    let w = workload_by_name("histogram", Scale::Small).unwrap();
    let hardened = harden(&w.module, &HardenConfig::haft());
    let cfg = CampaignConfig {
        injections: 60,
        seed: 4,
        vm: VmConfig { n_threads: 2, max_instructions: 100_000_000, ..Default::default() },
        ..Default::default()
    };
    let rep = run_campaign(&hardened, w.run_spec(), &cfg);
    let probs = haft::model::FaultProbabilities {
        masked: rep.pct(Outcome::Masked) / 100.0,
        sdc: rep.pct(Outcome::Sdc) / 100.0,
        crashed: (rep.pct(Outcome::Hang)
            + rep.pct(Outcome::OsDetected)
            + rep.pct(Outcome::IlrDetected))
            / 100.0,
        haft_correctable: rep.pct(Outcome::HaftCorrected) / 100.0,
    };
    let chain = haft::model::HaftChain { probs, rates: haft::model::RecoveryRates::default() };
    let pt = chain.evaluate(0.01, 3600.0);
    assert!(pt.availability > 0.0 && pt.availability <= 1.0);
    assert!(pt.corruption >= 0.0 && pt.corruption < 1.0);
}

/// The textual IR round-trips through the parser for real benchmark
/// modules, including hardened ones. Pass-inserted instructions make the
/// printed value ids non-sequential, so one parse α-renames them into
/// canonical order; after that the round-trip is the identity, and the
/// reparsed module runs identically.
#[test]
fn printer_parser_roundtrip_on_hardened_module() {
    let w = workload_by_name("histogram", Scale::Small).unwrap();
    let hardened = harden(&w.module, &HardenConfig::haft());
    let text = haft::ir::printer::print_module(&hardened);
    let parsed = haft::ir::parser::parse_module(&text).expect("parses");
    verify_module(&parsed).expect("verifies");
    // Canonical fixed point: print(parse(print(parse(x)))) == print(parse(x)).
    let canon = haft::ir::printer::print_module(&parsed);
    let reparsed = haft::ir::parser::parse_module(&canon).expect("reparses");
    assert_eq!(haft::ir::printer::print_module(&reparsed), canon);
    // And it still runs identically.
    let cfg = VmConfig { n_threads: 2, ..Default::default() };
    let a = Vm::run(&hardened, cfg.clone(), w.run_spec());
    let b = Vm::run(&parsed, cfg, w.run_spec());
    assert_eq!(a.output, b.output);
}

/// Lock elision end to end: hardened lock-based code commits transactions
/// instead of serializing on locks.
#[test]
fn lock_elision_reduces_lock_serialization() {
    use haft::apps::{memcached, KvSync, WorkloadMix};
    // Uniform keys (the paper's mcblaster setup): critical sections on
    // distinct buckets almost never conflict, so eliding their locks is a
    // pure win. (Zipf-hot traffic on our deliberately small table makes
    // large elided transactions abort-prone — see EXPERIMENTS.md.)
    let w = memcached(WorkloadMix::Uniform, KvSync::Lock, Scale::Small);
    let hardened = harden(&w.module, &HardenConfig::haft_with_elision());
    let base = VmConfig { n_threads: 4, tx_threshold: 500, ..Default::default() };
    let native = Vm::run(&w.module, base.clone(), w.run_spec());
    let mut ecfg = base.clone();
    ecfg.lock_elision = true;
    let elided = Vm::run(&hardened, ecfg, w.run_spec());
    assert_eq!(elided.output, native.output);
    assert!(elided.htm.commits > 0);
    // Elision must beat the non-elided hardened build.
    let plain = harden(&w.module, &HardenConfig::haft());
    let noelision = Vm::run(&plain, base, w.run_spec());
    assert!(
        elided.wall_cycles < noelision.wall_cycles,
        "elision {} vs noelision {}",
        elided.wall_cycles,
        noelision.wall_cycles
    );
}
