//! Unit tests for the `Experiment` pipeline API itself: variant
//! ordering, report bookkeeping, backend selection, and the recorded
//! performance baseline.

use haft::prelude::*;

/// `compare` must order variants deterministically: the native baseline
/// first, then the caller's configurations in the given order — twice in
/// a row, with identical labels and measurements.
#[test]
fn compare_orders_variants_consistently() {
    let w = workload_by_name("histogram", Scale::Small).unwrap();
    let configs = [
        HardenConfig::haft(),
        HardenConfig::ilr_only(),
        HardenConfig::tx_only(),
        HardenConfig::haft().without_local_calls(),
    ];
    let a = Experiment::workload(&w).threads(2).compare(&configs);
    let labels: Vec<&str> = a.variants.iter().map(|v| v.label.as_str()).collect();
    assert_eq!(labels, vec!["native", "HAFT", "ILR", "TX", "HAFT-nc"]);
    assert_eq!(a.baseline().label, "native");
    assert_eq!(a.baseline().overhead_vs_native, Some(1.0));

    // Deterministic across invocations: same order, same cycles.
    let b = Experiment::workload(&w).threads(2).compare(&configs);
    for (va, vb) in a.variants.iter().zip(&b.variants) {
        assert_eq!(va.label, vb.label);
        assert_eq!(va.run.wall_cycles, vb.run.wall_cycles);
        assert_eq!(va.overhead_vs_native, vb.overhead_vs_native);
    }

    // Lookup by label agrees with positional order.
    assert_eq!(a.variant("ILR").unwrap().run.wall_cycles, a.variants[2].run.wall_cycles);
    assert!(a.variant("nonexistent").is_none());
}

/// Every hardened variant reports pass stats consistent with the static
/// instruction counts, and overheads above 1.
#[test]
fn compare_reports_costs() {
    let w = workload_by_name("histogram", Scale::Small).unwrap();
    let report = Experiment::workload(&w).threads(2).compare(&[HardenConfig::haft()]);
    assert!(report.outputs_agree(), "{}", report.summary());
    let haft = report.variant("HAFT").unwrap();
    assert_eq!(haft.pass_stats.pass_names(), vec!["ilr", "tx"]);
    assert!(haft.pass_stats.added_by("ilr").unwrap() > 0);
    assert!(haft.pass_stats.added_by("tx").unwrap() > 0);
    assert!(report.overhead("HAFT").unwrap() > 1.0);
}

/// `Experiment::compare` must keep reproducing the native-vs-HAFT
/// overhead recorded in CHANGES.md for linearreg/Small at 2 threads
/// (micro-bench baseline: 2.70 ms native vs 6.58 ms HAFT ≈ 2.4×). The
/// simulator is deterministic, so drift beyond noise means a cost-model
/// or pass regression, not measurement error.
#[test]
fn compare_reproduces_recorded_linearreg_overhead() {
    let w = workload_by_name("linearreg", Scale::Small).unwrap();
    let report = Experiment::workload(&w).threads(2).compare(&[HardenConfig::haft()]);
    assert!(report.outputs_agree(), "{}", report.summary());
    let oh = report.overhead("HAFT").unwrap();
    assert!((1.8..=3.2).contains(&oh), "linearreg HAFT overhead drifted: {oh:.2}x");
}

/// A campaign through the experiment equals a manual `run_campaign` with
/// the same parameters — the unified report is a repackaging, not a
/// different methodology.
#[test]
fn experiment_campaign_matches_run_campaign() {
    let w = workload_by_name("histogram", Scale::Small).unwrap();
    let vm = VmConfig { n_threads: 2, max_instructions: 100_000_000, ..Default::default() };
    let cfg = CampaignConfig { injections: 40, seed: 7, ..Default::default() };

    let v =
        Experiment::workload(&w).harden(HardenConfig::haft()).vm(vm.clone()).campaign(cfg.clone());

    let hardened = PassManager::from_config(&HardenConfig::haft()).run_on(&w.module).0;
    let manual = run_campaign(&hardened, w.run_spec(), &CampaignConfig { vm, ..cfg });

    assert_eq!(v.campaign.unwrap().counts, manual.counts);
}

/// The acceptance grid for the pluggable-backend design: one `compare`
/// call races the default backend (full HAFT) against TMR over the same
/// native baseline, and a campaign against the TMR variant corrects by
/// masking — nonzero vote-corrected outcomes, zero HTM transactions,
/// zero rollback recoveries.
#[test]
fn compare_races_haft_against_tmr() {
    let w = workload_by_name("histogram", Scale::Small).unwrap();
    let report = Experiment::workload(&w)
        .threads(2)
        .compare(&[HardenConfig::default(), HardenConfig::tmr()]);
    assert!(report.outputs_agree(), "{}", report.summary());
    let labels: Vec<&str> = report.variants.iter().map(|v| v.label.as_str()).collect();
    assert_eq!(labels, vec!["native", "HAFT", "TMR"]);
    assert!(report.overhead("HAFT").unwrap() > 1.0);
    assert!(report.overhead("TMR").unwrap() > 1.0);
    // TMR runs the single `tmr` pass and publishes its vote count.
    let tmr = report.variant("TMR").unwrap();
    assert_eq!(tmr.pass_stats.pass_names(), vec!["tmr"]);
    assert!(tmr.pass_stats.metrics().get("pass.tmr.votes").unwrap() > 0.0);
    assert_eq!(tmr.run.htm.commits, 0, "TMR must not transactify");

    let v = Experiment::workload(&w)
        .backend(Backend::Tmr)
        .vm(VmConfig { n_threads: 2, max_instructions: 100_000_000, ..Default::default() })
        .campaign(CampaignConfig { injections: 60, seed: 11, ..Default::default() });
    let campaign = v.campaign.unwrap();
    assert!(
        campaign.counts.get(&Outcome::VoteCorrected).copied().unwrap_or(0) > 0,
        "TMR must mask some faults: {}",
        campaign.summary()
    );
    assert_eq!(
        campaign.counts.get(&Outcome::HaftCorrected).copied().unwrap_or(0),
        0,
        "no rollback machinery in the TMR backend"
    );
    assert_eq!(v.run.htm.commits, 0);
    assert_eq!(v.run.recoveries, 0);
}

/// `Experiment::backend` selects each backend's full-strength preset.
#[test]
fn backend_builder_selects_presets() {
    let w = workload_by_name("histogram", Scale::Small).unwrap();
    let tmr = Experiment::workload(&w).backend(Backend::Tmr).run();
    assert_eq!(tmr.label, "TMR");
    let haft = Experiment::workload(&w).backend(Backend::IlrTx).run();
    assert_eq!(haft.label, "HAFT");
    assert_eq!(haft.run.output, tmr.run.output, "backends agree on fault-free output");
}

/// Every terminal op carries the selected `Backend` on its report as the
/// enum, so callers dispatch on it instead of string-matching labels
/// like `TMR-tl` (native carries the default `IlrTx` with both passes
/// off, exactly as its `HardenConfig` does).
#[test]
fn variant_reports_expose_the_selected_backend() {
    let w = workload_by_name("histogram", Scale::Small).unwrap();
    let report = Experiment::workload(&w).threads(2).compare(&[
        HardenConfig::haft(),
        HardenConfig::tmr(),
        HardenConfig::tmr_unoptimized(),
    ]);
    let backends: Vec<Backend> = report.variants.iter().map(|v| v.backend).collect();
    assert_eq!(backends, vec![Backend::IlrTx, Backend::IlrTx, Backend::Tmr, Backend::Tmr]);
    // No string matching needed to find the masking variant.
    let tmr_count = report.variants.iter().filter(|v| v.backend == Backend::Tmr).count();
    assert_eq!(tmr_count, 2);

    // run() and campaign() carry it too.
    let v = Experiment::workload(&w).backend(Backend::Tmr).run();
    assert_eq!(v.backend, Backend::Tmr);
    assert_eq!(v.label, "TMR");
    let c = Experiment::workload(&w).threads(1).backend(Backend::Tmr).campaign(CampaignConfig {
        injections: 4,
        parallelism: 2,
        ..Default::default()
    });
    assert_eq!(c.backend, Backend::Tmr);
    assert!(c.campaign.is_some());
}

/// `Experiment::serve` reuses the lazily-cached hardened module: a load
/// sweep over one experiment hardens once and the reports stay
/// deterministic.
#[test]
fn serve_reuses_the_cached_hardened_module() {
    use haft::apps::{kv_shard, KvSync};
    let w = kv_shard(KvSync::Atomics);
    let exp = Experiment::workload(&w).harden(HardenConfig::haft());
    // Build once, serve twice: identical reports, and the pass stats the
    // cache produced are the ones `build()` reports.
    let (hardened, stats) = exp.build();
    assert!(hardened.total_inst_count() > w.module.total_inst_count());
    assert_eq!(stats.pass_names(), vec!["ilr", "tx"]);
    let cfg = ServeConfig { requests: 60, ..Default::default() };
    let a = exp.serve(&cfg);
    let b = exp.serve(&cfg);
    assert_eq!(a.label, "HAFT");
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.duration_ns, b.duration_ns);
    assert_eq!(a.requests_served, 60);
}
