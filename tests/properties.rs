//! Property-based tests over randomly generated programs: the HAFT
//! passes must preserve semantics and validity for *arbitrary* IR, and
//! detection must hold for single faults in straight-line hardened code.

use haft::prelude::*;
use proptest::prelude::*;

/// A tiny random straight-line program description.
#[derive(Clone, Debug)]
enum Step {
    Add(u8, u8),
    Mul(u8, u8),
    Xor(u8, u8),
    StoreLoad(u8),
    Branchy(u8),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Step::Add(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Step::Mul(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Step::Xor(a, b)),
        any::<u8>().prop_map(Step::StoreLoad),
        any::<u8>().prop_map(Step::Branchy),
    ]
}

/// Builds a runnable module from the step list. Values are tracked in a
/// rolling window so every generated operand is defined.
fn build_program(steps: &[Step]) -> Module {
    let mut m = Module::new("prop");
    let scratch = m.add_global("scratch", 256);
    let g = Operand::GlobalAddr(scratch);
    let mut f = FunctionBuilder::new("fini", &[], None);
    f.set_non_local();
    let mut vals = vec![f.mov(Ty::I64, f.iconst(Ty::I64, 0x1234_5678))];
    let pick = |vals: &Vec<haft::ir::function::ValueId>, i: u8| vals[i as usize % vals.len()];
    for s in steps {
        let v = match s {
            Step::Add(a, b) => {
                let (x, y) = (pick(&vals, *a), pick(&vals, *b));
                f.add(Ty::I64, x, y)
            }
            Step::Mul(a, b) => {
                let (x, y) = (pick(&vals, *a), pick(&vals, *b));
                f.mul(Ty::I64, x, y)
            }
            Step::Xor(a, b) => {
                let (x, y) = (pick(&vals, *a), pick(&vals, *b));
                f.bin(BinOp::Xor, Ty::I64, x, y)
            }
            Step::StoreLoad(a) => {
                let x = pick(&vals, *a);
                let slot = f.bin(BinOp::And, Ty::I64, x, f.iconst(Ty::I64, 24));
                let addr = f.add(Ty::I64, g, slot);
                f.store(Ty::I64, x, addr);
                f.load(Ty::I64, addr)
            }
            Step::Branchy(a) => {
                let x = pick(&vals, *a);
                let c = f.cmp(CmpOp::SGt, Ty::I64, x, f.iconst(Ty::I64, 0));
                f.if_then_else(
                    Ty::I64,
                    c,
                    |b| {
                        let t = b.add(Ty::I64, x, b.iconst(Ty::I64, 1));
                        t.into()
                    },
                    |b| {
                        let t = b.bin(BinOp::Xor, Ty::I64, x, b.iconst(Ty::I64, -1));
                        t.into()
                    },
                )
            }
        };
        vals.push(v);
        if vals.len() > 8 {
            vals.remove(0);
        }
    }
    let last = *vals.last().unwrap();
    f.emit_out(Ty::I64, last);
    f.ret(None);
    m.push_func(f.finish());
    m
}

fn fini_spec() -> RunSpec<'static> {
    RunSpec { fini: Some("fini"), ..Default::default() }
}

/// The four matrix-shaped Phoenix workloads the ABFT backend targets.
const MATRIX_NAMES: [&str; 4] = ["pca", "linearreg", "matrixmul", "kmeans"];

/// Fault-free ABFT run per matrix workload, computed once for the whole
/// proptest sweep (the clean reference never changes across cases).
fn abft_clean_run(idx: usize) -> &'static RunResult {
    use std::sync::OnceLock;
    static CLEAN: [OnceLock<RunResult>; 4] = [const { OnceLock::new() }; 4];
    CLEAN[idx].get_or_init(|| {
        let w = workload_by_name(MATRIX_NAMES[idx], Scale::Small).unwrap();
        Experiment::workload(&w).harden(HardenConfig::abft()).threads(2).run().run
    })
}

/// Every matrix workload, both engines: an ABFT fault-free run is
/// output-identical to native, never fires a correction, and the two
/// engines return byte-identical `RunResult`s.
#[test]
fn abft_matrix_workloads_are_clean_and_engine_identical() {
    for name in MATRIX_NAMES {
        let w = workload_by_name(name, Scale::Small).unwrap();
        let native = Experiment::workload(&w).threads(2).run().run;
        assert_eq!(native.outcome, RunOutcome::Completed, "{name}: native must complete");
        let mut runs = Vec::new();
        for engine in [Engine::Interp, Engine::Fused] {
            let r = Experiment::workload(&w)
                .harden(HardenConfig::abft())
                .threads(2)
                .engine(engine)
                .run()
                .run;
            assert_eq!(r.outcome, RunOutcome::Completed, "{name}/{engine:?}");
            assert_eq!(r.output, native.output, "{name}/{engine:?}: ABFT changed the output");
            assert_eq!(r.corrected_by_checksum, 0, "{name}/{engine:?}: fault-free correction");
            assert_eq!(r.corrected_by_vote, 0, "{name}/{engine:?}: no votes in ABFT");
            runs.push(r);
        }
        assert_eq!(runs[0], runs[1], "{name}: engines diverge on the full RunResult");
    }
}

/// Fallback-coverage regression pins: which functions of each workload
/// the ABFT pass claims, per config. A recognizer change that silently
/// demotes a kernel to full HAFT (or silently claims a function it
/// should not) moves these counters and must be a reviewed diff.
#[test]
fn abft_coverage_split_is_pinned_per_workload() {
    // (workload, default: covered/fallback/chains, fallback-heavy: covered/fallback)
    let pins = [
        ("pca", (2.0, 0.0, 28.0), (1.0, 1.0)),
        ("linearreg", (2.0, 0.0, 8.0), (2.0, 0.0)),
        ("matrixmul", (2.0, 0.0, 2.0), (0.0, 2.0)),
        ("kmeans", (2.0, 0.0, 5.0), (1.0, 1.0)),
        // Not a matrix workload: the histogram counters carry no data a
        // checksum could protect, so only the reduce phase stays covered.
        ("histogram", (1.0, 1.0, 1.0), (0.0, 2.0)),
    ];
    for (name, (covered, fallback, chains), (fb_covered, fb_fallback)) in pins {
        let w = workload_by_name(name, Scale::Small).unwrap();
        let (_, stats) = Experiment::workload(&w).harden(HardenConfig::abft()).build();
        let m = stats.metrics();
        assert_eq!(m.get("pass.abft.functions_covered"), Some(covered), "{name}: covered");
        assert_eq!(m.get("pass.abft.functions_fallback"), Some(fallback), "{name}: fallback");
        assert_eq!(m.get("pass.abft.chains"), Some(chains), "{name}: chains");
        let (_, fstats) =
            Experiment::workload(&w).harden(HardenConfig::abft_fallback_heavy()).build();
        let fm = fstats.metrics();
        assert_eq!(
            fm.get("pass.abft.functions_covered"),
            Some(fb_covered),
            "{name}: fb-heavy covered"
        );
        assert_eq!(
            fm.get("pass.abft.functions_fallback"),
            Some(fb_fallback),
            "{name}: fb-heavy fallback"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Hardening by *any* backend — ILR+TX at any optimization level, or
    /// TMR in either mode — yields a module that passes `verify_module`
    /// and produces output identical to native on fault-free runs, for
    /// arbitrary generated programs.
    #[test]
    fn hardening_preserves_semantics(steps in proptest::collection::vec(step_strategy(), 1..40)) {
        let m = build_program(&steps);
        verify_module(&m).unwrap();
        let configs = [
            HardenConfig::at_opt_level(OptLevel::None),
            HardenConfig::at_opt_level(OptLevel::FaultProp),
            HardenConfig::tmr(),
            HardenConfig::tmr_unoptimized(),
            HardenConfig::abft(),
            HardenConfig::abft_fallback_heavy(),
        ];
        for hc in &configs {
            let (hardened, _) = Experiment::new(&m).harden(hc.clone()).build();
            prop_assert!(
                verify_module(&hardened).is_ok(),
                "{} produced invalid IR", hc.label()
            );
        }
        let report = Experiment::new(&m).spec(fini_spec()).compare(&configs);
        prop_assert!(report.outputs_agree(), "{}", report.summary());
    }

    /// Single-fault guarantee on ILR-hardened straight-line programs:
    /// a fault is detected, masked, or recovered — silent corruption of
    /// the emitted value requires hitting one of the narrow
    /// windows of vulnerability, which the emit-side check closes for
    /// the final externalization.
    #[test]
    fn single_faults_are_never_catastrophic(
        steps in proptest::collection::vec(step_strategy(), 1..24),
        occ_seed in any::<u64>(),
        mask in 1u64..,
    ) {
        let m = build_program(&steps);
        let exp = Experiment::new(&m)
            .harden(HardenConfig::haft())
            .spec(fini_spec())
            .vm(VmConfig { max_instructions: 50_000_000, ..Default::default() });
        let clean = exp.run().run;
        prop_assert_eq!(clean.outcome, RunOutcome::Completed);
        let occurrence = occ_seed % clean.register_writes.max(1);
        let r = exp.run_with_fault(FaultPlan { occurrence, xor_mask: mask }).run;
        // Completed runs must have produced the right answer (corrected
        // or masked); everything else is a detected fail-stop — never a
        // hang (straight-line code cannot loop) and never an SDC.
        match r.outcome {
            RunOutcome::Completed => prop_assert_eq!(&r.output, &clean.output),
            RunOutcome::Detected | RunOutcome::Trapped(_) => {}
            RunOutcome::Hang => prop_assert!(false, "straight-line code cannot hang"),
        }
    }

    /// Fault forensics is strictly observational: a fault run with taint
    /// tracking enabled returns a `RunResult` whose core — outcome,
    /// output, every cycle counter, HTM stats — is byte-identical to the
    /// same run with forensics off, on both engines. And the record's
    /// latency invariant holds: zero detection latency exactly when the
    /// flip landed in a dead register (`MaskedAtSite`).
    #[test]
    fn forensics_is_observational_and_latency_zero_iff_masked_at_site(
        steps in proptest::collection::vec(step_strategy(), 1..20),
        occ_seed in any::<u64>(),
        mask in 1u64..,
    ) {
        let m = build_program(&steps);
        for engine in [Engine::Interp, Engine::Fused] {
            let base = VmConfig { max_instructions: 50_000_000, engine, ..Default::default() };
            let exp = Experiment::new(&m)
                .harden(HardenConfig::haft())
                .spec(fini_spec())
                .vm(base.clone());
            let clean = exp.run().run;
            prop_assert_eq!(clean.outcome, RunOutcome::Completed);
            let plan = FaultPlan {
                occurrence: occ_seed % clean.register_writes.max(1),
                xor_mask: mask,
            };
            let off = exp.run_with_fault(plan).run;
            let on = exp
                .clone()
                .vm(VmConfig { forensics: true, ..base })
                .run_with_fault(plan)
                .run;
            prop_assert!(off.forensics.is_none(), "forensics off must not record");
            let mut on_core = on;
            let record = on_core.forensics.take();
            prop_assert_eq!(&on_core, &off, "{:?}: forensics perturbed the run", engine);
            if let Some(fx) = record {
                prop_assert_eq!(
                    fx.detect_latency_insts == 0,
                    fx.detector == FaultDetector::MaskedAtSite,
                    "latency {} vs detector {:?}",
                    fx.detect_latency_insts,
                    fx.detector
                );
            }
        }
    }

    /// The printer/parser round-trip reaches a fixed point after one
    /// α-renaming parse, for arbitrary generated modules, hardened or not.
    #[test]
    fn roundtrip_holds_for_generated_programs(steps in proptest::collection::vec(step_strategy(), 1..24)) {
        let m = build_program(&steps);
        for hc in [HardenConfig::native(), HardenConfig::haft()] {
            let (module, _) = Experiment::new(&m).harden(hc).build();
            let text = haft::ir::printer::print_module(&module);
            let parsed = haft::ir::parser::parse_module(&text).unwrap();
            let canon = haft::ir::printer::print_module(&parsed);
            let reparsed = haft::ir::parser::parse_module(&canon).unwrap();
            prop_assert_eq!(haft::ir::printer::print_module(&reparsed), canon);
        }
    }

    /// Single-fault sweep over ABFT-covered kernels: a run the checksum
    /// corrected must be bit-clean. (Faults in the *unprotected* slice of
    /// a covered function can still corrupt — that is ABFT's
    /// coverage-for-overhead trade — but a fired correction that still
    /// let corruption through would mean the majority logic is wrong.)
    #[test]
    fn abft_corrections_are_always_clean(
        workload_idx in 0usize..4,
        occ_seed in any::<u64>(),
        mask in 1u64..,
    ) {
        let name = MATRIX_NAMES[workload_idx];
        let clean = abft_clean_run(workload_idx);
        prop_assert_eq!(clean.outcome, RunOutcome::Completed);
        let w = workload_by_name(name, Scale::Small).unwrap();
        let exp = Experiment::workload(&w).harden(HardenConfig::abft()).threads(2);
        let occurrence = occ_seed % clean.register_writes.max(1);
        let r = exp.run_with_fault(FaultPlan { occurrence, xor_mask: mask }).run;
        if r.corrected_by_checksum > 0 && r.outcome == RunOutcome::Completed {
            prop_assert_eq!(&r.output, &clean.output, "{}: corrected run diverged", name);
        }
    }

    /// `Experiment::run` is exactly the manual `harden` + `Vm::run`
    /// wiring it replaced: same output, same cycle counts, same HTM
    /// stats, and pass stats that account for every added instruction —
    /// for arbitrary generated programs and the paper's main variants.
    #[test]
    fn experiment_matches_manual_wiring(
        steps in proptest::collection::vec(step_strategy(), 1..32),
        variant in 0usize..3,
    ) {
        let m = build_program(&steps);
        let hc = [HardenConfig::native(), HardenConfig::ilr_only(), HardenConfig::haft()]
            [variant]
            .clone();
        let v = Experiment::new(&m).harden(hc.clone()).spec(fini_spec()).run();
        // The one intentional use of the deprecated `harden` shim left in
        // the tree: this test pins the shim and `Experiment` to the same
        // semantics, so it must keep calling the shim itself.
        #[allow(deprecated)]
        let hardened = harden(&m, &hc);
        let manual = Vm::run(&hardened, VmConfig::default(), fini_spec());
        prop_assert_eq!(&v.run, &manual);
        prop_assert_eq!(
            v.pass_stats.total_added(),
            hardened.total_inst_count() as i64 - m.total_inst_count() as i64
        );
    }
}
