//! Smoke test guarding the README quickstart and the `haft` facade
//! doctest: the documented `Experiment` round-trip must keep producing
//! identical output when a fault is injected mid-trace. If this breaks,
//! the README's copy-paste example is lying.

use haft::prelude::*;

/// Builds the same toy program the facade doctest uses: sum 0..100 into a
/// global, then emit the result.
fn doctest_module() -> Module {
    let mut m = Module::new("demo");
    let acc = m.add_global("acc", 8);
    let mut f = FunctionBuilder::new("fini", &[], None);
    f.set_non_local();
    let g = Operand::GlobalAddr(acc);
    f.counted_loop(f.iconst(Ty::I64, 0), f.iconst(Ty::I64, 100), |b, i| {
        let cur = b.load(Ty::I64, g);
        let nxt = b.add(Ty::I64, cur, i);
        b.store(Ty::I64, nxt, g);
    });
    let v = f.load(Ty::I64, g);
    f.emit_out(Ty::I64, v);
    f.ret(None);
    m.push_func(f.finish());
    m
}

#[test]
fn facade_doctest_roundtrip_survives_an_injected_fault() {
    let m = doctest_module();
    verify_module(&m).unwrap();

    let exp = Experiment::new(&m)
        .harden(HardenConfig::haft())
        .spec(RunSpec { fini: Some("fini"), ..Default::default() });

    let clean = exp.run().expect_completed("clean");
    assert!(clean.register_writes > 0, "trace must expose injectable register writes");

    // The doctest's exact injection point (midpoint of the trace)…
    let faulty = exp
        .run_with_fault(FaultPlan { occurrence: clean.register_writes / 2, xor_mask: 0x40 })
        .expect_completed("doctest fault must be recovered");
    assert_eq!(faulty.output, clean.output, "HAFT recovered the fault");

    // …and a sweep across the trace: a single bit flip anywhere must never
    // become a silent corruption of the emitted output.
    let step = (clean.register_writes / 23).max(1);
    for occurrence in (0..clean.register_writes).step_by(step as usize) {
        let r = exp.run_with_fault(FaultPlan { occurrence, xor_mask: 0x40 }).run;
        match r.outcome {
            RunOutcome::Completed => {
                assert_eq!(r.output, clean.output, "SDC at occurrence {occurrence}")
            }
            // Detected fail-stops are acceptable; silent corruption is not.
            RunOutcome::Detected | RunOutcome::Trapped(_) => {}
            RunOutcome::Hang => panic!("hang at occurrence {occurrence}"),
        }
    }
}
