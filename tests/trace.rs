//! Differential and schema tests for the observability layer
//! (`haft-trace`): tracing and profiling must be strictly observational
//! (bit-identical results with instrumentation on or off), cycle
//! attribution must sum exactly to the run's cycle accounting, a native
//! serving trace must cover every subsystem, and the unified metrics
//! registry's names must stay stable.

use haft::apps::{kv_shard, KvSync};
use haft::prelude::*;

/// Unique scratch path for trace files (no tempfile dependency; the OS
/// temp dir plus the test name and process id is collision-free enough
/// for a test binary that runs each test at most once per process).
fn scratch(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("haft-{}-{}.json", name, std::process::id()))
}

/// `Vm::run_traced` must return a `RunResult` bit-identical to
/// `Vm::run` — on both engines, for native, HAFT, and TMR hardening.
/// This is the core zero-cost contract: attaching a trace buffer
/// observes the run, it never perturbs it.
#[test]
fn traced_vm_run_is_bit_identical() {
    let w = workload_by_name("histogram", Scale::Small).unwrap();
    for engine in [Engine::Interp, Engine::Fused] {
        for cfg in [HardenConfig::native(), HardenConfig::haft(), HardenConfig::tmr()] {
            let label = cfg.label();
            let exp = Experiment::workload(&w).harden(cfg).engine(engine).threads(2);
            let (module, _) = exp.build();
            let vm = VmConfig { n_threads: 2, engine, ..Default::default() };
            let plain = Vm::run(&module, vm.clone(), w.run_spec());
            let mut buf = TraceBuf::new();
            let traced = Vm::run_traced(&module, vm, w.run_spec(), &mut buf);
            assert_eq!(plain, traced, "{engine:?}/{label}: tracing changed the result");
            assert!(!buf.events.is_empty(), "{engine:?}/{label}: no events collected");
        }
    }
}

/// `Vm::run_profiled` must also be bit-identical, and the profile's
/// cell total must equal the run's `cpu_cycles` *exactly* — the
/// telescoping attribution leaves no cycle unaccounted and counts none
/// twice. Pinned on both engines so the fused fetch path prices
/// identically to the interpreter.
#[test]
fn profile_attribution_sums_exactly_to_cpu_cycles() {
    let w = workload_by_name("histogram", Scale::Small).unwrap();
    for engine in [Engine::Interp, Engine::Fused] {
        for cfg in [HardenConfig::haft(), HardenConfig::tmr()] {
            let label = cfg.label();
            let exp = Experiment::workload(&w).harden(cfg).engine(engine).threads(2);
            let plain = exp.run();
            let (profiled, profile) = exp.run_profiled();
            assert_eq!(plain.run, profiled.run, "{engine:?}/{label}: profiling changed the run");
            assert_eq!(
                profile.total(),
                profiled.run.cpu_cycles,
                "{engine:?}/{label}: attribution must sum exactly"
            );
            assert!(!profile.by_function().is_empty());
        }
    }
}

/// A traced DES serve run must return a `ServiceReport` equal to the
/// untraced one — full structural equality, including latency
/// percentiles, per-shard stats, and fault accounting.
#[test]
fn traced_sim_serve_is_bit_identical() {
    let w = kv_shard(KvSync::Atomics);
    let cfg = ServeConfig {
        requests: 120,
        shards: 2,
        faults: Some(FaultLoad::default()),
        sagas: Some(SagaLoad::default()),
        ..Default::default()
    };
    let exp = Experiment::workload(&w).harden(HardenConfig::haft());
    let plain = exp.serve(&cfg);

    let path = scratch("sim-serve");
    let traced = exp.clone().trace(&path).serve(&cfg);
    assert_eq!(plain, traced, "tracing changed the DES report");

    let text = std::fs::read_to_string(&path).unwrap();
    let counts = validate_chrome_trace(&text).unwrap();
    let cats: Vec<&str> = counts.iter().map(|(c, _)| c.as_str()).collect();
    assert!(cats.contains(&"serve"), "missing serve events: {cats:?}");
    assert!(cats.contains(&"vm"), "missing spliced VM events: {cats:?}");
    let _ = std::fs::remove_file(&path);
}

/// A traced native run must produce a Perfetto-loadable file whose
/// events span every subsystem: VM phases, HTM transactions, batch
/// service, pool scheduling, and saga lifecycle.
#[test]
fn native_trace_covers_every_subsystem() {
    let w = kv_shard(KvSync::Atomics);
    let cfg = ServeConfig {
        requests: 160,
        shards: 2,
        sagas: Some(SagaLoad { every: 2, span: 3 }),
        ..Default::default()
    };
    let path = scratch("native-serve");
    let report = Experiment::workload(&w)
        .harden(HardenConfig::haft())
        .trace(&path)
        .serve_in(ServeMode::Native { workers: 2 }, &cfg);
    assert_eq!(report.requests_served, 160);
    assert!(report.wall.is_some(), "native run must fill the wall report");

    let text = std::fs::read_to_string(&path).unwrap();
    let counts = validate_chrome_trace(&text).unwrap();
    let cats: Vec<&str> = counts.iter().map(|(c, _)| c.as_str()).collect();
    for required in ["vm", "htm", "serve", "pool", "saga"] {
        assert!(cats.contains(&required), "missing `{required}` events: {cats:?}");
    }
    let _ = std::fs::remove_file(&path);
}

/// The unified registry's metric names are a public schema: dashboards
/// and the report harness key on them, so renames are breaking changes.
/// This pins every name each exporter emits.
#[test]
fn metrics_registry_names_are_stable() {
    let w = workload_by_name("histogram", Scale::Small).unwrap();
    let v = Experiment::workload(&w).harden(HardenConfig::haft()).threads(2).run();

    let vm_metrics = v.run.metrics();
    let vm_names: Vec<&str> = vm_metrics.names();
    assert_eq!(
        vm_names,
        vec![
            "htm.aborts.capacity",
            "htm.aborts.conflict",
            "htm.aborts.explicit",
            "htm.aborts.ilr-detected",
            "htm.aborts.spontaneous",
            "htm.aborts.timer",
            "htm.aborts.unfriendly",
            "htm.commits",
            "htm.fallbacks",
            "htm.started",
            "htm.total_cycles",
            "htm.tx_cycles",
            "vm.corrected_by_checksum",
            "vm.corrected_by_vote",
            "vm.cycles.cpu",
            "vm.cycles.fini",
            "vm.cycles.init",
            "vm.cycles.wall",
            "vm.cycles.worker",
            "vm.detections",
            "vm.instructions",
            "vm.mispredicts",
            "vm.recoveries",
            "vm.register_writes",
        ]
    );
    assert_eq!(v.run.metrics().get("htm.commits"), Some(v.run.htm.commits as f64));

    let pass_metrics = v.pass_stats.metrics();
    let pass_names: Vec<&str> = pass_metrics.names();
    assert_eq!(pass_names, vec!["pass.added.total", "pass.ilr.functions", "pass.tx.functions"]);

    let fuse = Vm::fusion_metrics(&w.module, &VmConfig::default());
    assert_eq!(
        fuse.names(),
        vec![
            "vm.fuse.alu_pairs",
            "vm.fuse.cmp_br",
            "vm.fuse.total",
            "vm.fuse.tx_brackets",
            "vm.fuse.vote_mem",
        ]
    );

    let kv = kv_shard(KvSync::Atomics);
    let cfg =
        ServeConfig { requests: 60, faults: Some(FaultLoad::default()), ..Default::default() };
    let report = Experiment::workload(&kv).harden(HardenConfig::haft()).serve(&cfg);
    let m = report.metrics();
    for name in [
        "serve.requests.offered",
        "serve.requests.served",
        "serve.duration_ns",
        "serve.achieved_rps",
        "serve.batches",
        "serve.latency_us.p50",
        "serve.latency_us.p95",
        "serve.latency_us.p99",
        "serve.latency_us.p999",
        "serve.saga.suppressed_joins",
        "serve.faults.availability_pct",
        "serve.faults.sdc_per_million",
        "serve.faults.crashed_batches",
        "serve.faults.corrected_batches",
        "serve.telemetry.intervals",
        "serve.telemetry.fault_rate_ewma",
        "serve.telemetry.peak_faulty",
    ] {
        assert!(m.get(name).is_some(), "missing serve metric `{name}`: {:?}", m.names());
    }
    assert_eq!(m.get("serve.requests.served"), Some(report.requests_served as f64));

    // Campaign metrics: the `faults.*` block. Outcome and group names
    // come from `metric_name()` and are pinned exactly; the forensics
    // sub-block is schema-complete (every detector present, fired or not).
    let campaign = Experiment::workload(&w)
        .harden(HardenConfig::haft())
        .campaign(CampaignConfig {
            injections: 12,
            parallelism: 2,
            forensics: true,
            ..Default::default()
        })
        .campaign
        .expect("campaign variant carries the report");
    let fm = campaign.metrics();
    let outcome_names: Vec<&str> =
        fm.names().into_iter().filter(|n| n.starts_with("faults.outcome.")).collect();
    assert_eq!(
        outcome_names,
        vec![
            "faults.outcome.checksum-corrected",
            "faults.outcome.haft-corrected",
            "faults.outcome.hang",
            "faults.outcome.ilr-detected",
            "faults.outcome.masked",
            "faults.outcome.os-detected",
            "faults.outcome.sdc",
            "faults.outcome.vote-corrected",
        ]
    );
    let group_names: Vec<&str> =
        fm.names().into_iter().filter(|n| n.starts_with("faults.group.")).collect();
    assert_eq!(
        group_names,
        vec!["faults.group.correct", "faults.group.corrupted", "faults.group.crashed"]
    );
    for name in [
        "faults.runs",
        "faults.forensics.fired",
        "faults.forensics.escaped_to_memory",
        "faults.detect_latency.masked-at-site.count",
        "faults.detect_latency.masked.count",
        "faults.detect_latency.ilr.count",
        "faults.detect_latency.ilr.mean_insts",
        "faults.detect_latency.ilr.max_insts",
        "faults.detect_latency.vote.count",
        "faults.detect_latency.abft-correct.count",
        "faults.detect_latency.htm-abort.count",
        "faults.detect_latency.trap.count",
        "faults.detect_latency.hang.count",
        "faults.detect_latency.escaped.count",
        "faults.detect_latency.mean_cycles",
        "faults.detect_latency.max_cycles",
        "faults.propagation.mean",
        "faults.propagation.max",
    ] {
        assert!(fm.get(name).is_some(), "missing faults metric `{name}`: {:?}", fm.names());
    }
    assert_eq!(fm.get("faults.runs"), Some(campaign.runs as f64));
}
